//===- Server.cpp - commsetd compile-and-execute service ------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Threading model (see Server.h): one listener thread accepting loopback
// TCP connections, one handler thread per live connection (parse, admit,
// wait, reply), one executor thread draining the admitted-job queue onto
// the process-wide WorkerPool. Connection handlers never execute jobs and
// the executor never touches sockets, so a hostile peer can only ever hurt
// its own connection.
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/Server.h"

#include "commset/Workloads/Workload.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <set>
#include <sstream>

using namespace commset;
using namespace commset::serve;

namespace {

/// Order-insensitive output digest for inline-source jobs (mirrors the
/// workloads' checksum contract: DOALL may reorder record() calls).
struct ServeRecorder {
  std::mutex M;
  uint64_t Sum = 0;
  uint64_t Count = 0;

  void add(int64_t I, int64_t V) {
    std::lock_guard<std::mutex> G(M);
    Sum += faultMix(static_cast<uint64_t>(I) ^
                    (static_cast<uint64_t>(V) << 1));
    ++Count;
  }
  void reset() {
    std::lock_guard<std::mutex> G(M);
    Sum = 0;
    Count = 0;
  }
  uint64_t digest() {
    std::lock_guard<std::mutex> G(M);
    return Sum ^ faultMix(Count);
  }
};

/// The standard natives available to inline-source jobs: a pure kernel and
/// a commutative recorder, matching the annotations clients are expected
/// to declare (extern + effects pragmas) in submitted programs.
void registerServeNatives(NativeRegistry &Natives, ServeRecorder &Rec) {
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) {
        return RtValue::ofInt(Args[0].I * Args[0].I + 1);
      },
      /*FixedCostNs=*/20000);
  Natives.add(
      "record",
      [&Rec](const RtValue *Args, unsigned) {
        Rec.add(Args[0].I, Args[1].I);
        return RtValue();
      },
      /*FixedCostNs=*/400);
}

std::string hex64(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// One admitted job's shared state between its connection handler and the
/// executor. shared_ptr-held by both, so either side may outlive the other
/// (abandoned waits, disconnected clients).
struct ExecJob {
  RunRequest Req;
  std::shared_ptr<CompiledJob> Compiled;
  bool CacheHit = false;
  uint64_t AdmitNs = 0;
  uint64_t DeadlineAtNs = 0;

  /// Queued -> Running -> Done, or Queued -> Expired (deadline passed
  /// before the executor got to it; the handler already replied).
  enum : int { Queued = 0, Running = 1, Done = 2, Expired = 3 };
  std::atomic<int> State{Queued};

  std::mutex M; ///< Guards the reply fields; pairs with Cv.
  std::condition_variable Cv;
  RespStatus Status = RespStatus::InternalError;
  std::vector<std::pair<std::string, std::string>> Kv;
};

} // namespace

struct Server::Impl {
  ServerConfig Config;
  AdmissionController Admission;
  PlanCache Cache;

  int ListenFd = -1;
  std::atomic<bool> Stop{false};
  std::thread Listener;
  std::thread Executor;

  // Live connection bookkeeping: fds for shutdown(), threads for join.
  std::mutex ConnM;
  std::set<int> ConnFds;
  struct ConnThread {
    std::thread Th;
    std::shared_ptr<std::atomic<bool>> DoneFlag;
  };
  std::list<ConnThread> ConnThreads;
  std::atomic<unsigned> ActiveConns{0};
  std::atomic<unsigned> NextConnId{0};

  // Admitted-job queue (executor input).
  std::mutex QueueM;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<ExecJob>> Queue;
  std::atomic<size_t> Depth{0};

  // Counters + latency histogram behind one mutex (reply-rate traffic).
  mutable std::mutex StatsM;
  uint64_t Connections = 0;
  uint64_t ConnectionsShed = 0;
  uint64_t Requests = 0;
  uint64_t BadFrames = 0;
  uint64_t Replies[NumRespStatuses] = {};
  uint64_t ExpiredInQueue = 0;
  uint64_t InjectedDisconnects = 0;
  uint64_t InjectedSlowClient = 0;
  size_t MaxDepthSeen = 0;
  trace::LogHistogram LatencyNs;

  explicit Impl(const ServerConfig &C)
      : Config(C), Admission(C.Admission),
        Cache(C.CacheCapacity, C.BreakerFailThreshold,
              C.BreakerProbeAfterSkips) {}

  void countReply(RespStatus S, uint64_t LatNs, bool Admitted) {
    {
      std::lock_guard<std::mutex> G(StatsM);
      ++Replies[static_cast<unsigned>(S)];
      if (Admitted)
        LatencyNs.add(LatNs);
    }
    trace::emit(trace::EventKind::ServeReply, /*Tid=*/0,
                static_cast<uint64_t>(S), LatNs);
  }

  bool sendAll(int Fd, const std::string &Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return false; // Peer gone; the caller closes the connection.
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  bool sendResponse(int Fd, RespStatus S,
                    const std::vector<std::pair<std::string, std::string>> &Kv,
                    uint64_t LatNs, bool Admitted) {
    countReply(S, LatNs, Admitted);
    return sendAll(Fd, formatResponse(S, Kv));
  }

  void listenLoop();
  void handleConnection(int Fd, unsigned ConnId);
  /// Returns false when the connection must close.
  bool handleFrame(int Fd, unsigned ConnId, const Frame &F);
  bool handleRun(int Fd, unsigned ConnId, const RunRequest &Req);
  void execLoop();
  void executeJob(const std::shared_ptr<ExecJob> &J);
  void failJob(const std::shared_ptr<ExecJob> &J, RespStatus S,
               const std::string &Why);
  std::string statsText() const;
  ServerStats snapshot() const;
};

//===----------------------------------------------------------------------===//
// Listener + connection handling
//===----------------------------------------------------------------------===//

void Server::Impl::listenLoop() {
  while (!Stop.load(std::memory_order_acquire)) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R <= 0 || !(P.revents & POLLIN))
      continue;
    int C = ::accept(ListenFd, nullptr, nullptr);
    if (C < 0)
      continue;
    {
      std::lock_guard<std::mutex> G(StatsM);
      ++Connections;
    }
    if (ActiveConns.load(std::memory_order_relaxed) >=
        Config.MaxConnections) {
      // Connection-level shedding: tell the peer why, then close.
      sendResponse(C, RespStatus::RejectedOverload,
                   {{"error", "connection limit reached"}}, 0,
                   /*Admitted=*/false);
      ::close(C);
      std::lock_guard<std::mutex> G(StatsM);
      ++ConnectionsShed;
      continue;
    }
    ActiveConns.fetch_add(1, std::memory_order_relaxed);
    unsigned ConnId = NextConnId.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> G(ConnM);
    ConnFds.insert(C);
    // Reap finished handlers so a long-lived server does not accumulate
    // one zombie std::thread per past connection.
    for (auto It = ConnThreads.begin(); It != ConnThreads.end();) {
      if (It->DoneFlag->load(std::memory_order_acquire)) {
        It->Th.join();
        It = ConnThreads.erase(It);
      } else {
        ++It;
      }
    }
    auto Done = std::make_shared<std::atomic<bool>>(false);
    ConnThreads.push_back(
        {std::thread([this, C, ConnId, Done] {
           handleConnection(C, ConnId);
           Done->store(true, std::memory_order_release);
         }),
         Done});
  }
}

void Server::Impl::handleConnection(int Fd, unsigned ConnId) {
  FrameReader Reader;
  char Buf[4096];
  bool Alive = true;
  while (Alive && !Stop.load(std::memory_order_acquire)) {
    Frame F;
    std::string Err;
    FrameReader::Status St = Reader.next(F, &Err);
    if (St == FrameReader::Status::Error) {
      // Framing is gone; one BAD_REQUEST best-effort reply, then close.
      {
        std::lock_guard<std::mutex> G(StatsM);
        ++BadFrames;
      }
      sendResponse(Fd, RespStatus::BadRequest, {{"error", Err}}, 0, false);
      break;
    }
    if (St == FrameReader::Status::Ready) {
      Alive = handleFrame(Fd, ConnId, F);
      continue;
    }
    // NeedMore: wait for bytes, bounded by the slow-client cutoff.
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1, static_cast<int>(Config.RecvTimeoutMs));
    if (R <= 0)
      break; // Idle past the cutoff (or poll error): drop the connection.
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break; // Peer closed / reset mid-request: just unwind.
    Reader.feed(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  {
    std::lock_guard<std::mutex> G(ConnM);
    ConnFds.erase(Fd);
  }
  ActiveConns.fetch_sub(1, std::memory_order_relaxed);
}

bool Server::Impl::handleFrame(int Fd, unsigned ConnId, const Frame &F) {
  MsgType T;
  if (!msgTypeFromName(F.Kind, T)) {
    {
      std::lock_guard<std::mutex> G(StatsM);
      ++BadFrames;
    }
    sendResponse(Fd, RespStatus::BadRequest,
                 {{"error", "unknown request kind " + F.Kind}}, 0, false);
    return false;
  }
  {
    std::lock_guard<std::mutex> G(StatsM);
    ++Requests;
  }
  switch (T) {
  case MsgType::Ping:
    countReply(RespStatus::Ok, 0, /*Admitted=*/false);
    return sendAll(Fd, formatResponse(RespStatus::Ok, {{"pong", "1"}}));
  case MsgType::Stats: {
    // Snapshot first, then count: the reply itself is not in its own body.
    std::string Text = statsText();
    countReply(RespStatus::Ok, 0, /*Admitted=*/false);
    return sendAll(Fd, formatFrame("OK", Text));
  }
  case MsgType::Run: {
    RunRequest Req;
    std::string Err;
    if (!parseRunRequest(F.Body, Req, &Err)) {
      // The frame itself was well-formed, so the stream is still in sync:
      // reply and keep the connection.
      sendResponse(Fd, RespStatus::BadRequest, {{"error", Err}}, 0, false);
      return true;
    }
    return handleRun(Fd, ConnId, Req);
  }
  }
  return false;
}

bool Server::Impl::handleRun(int Fd, unsigned ConnId, const RunRequest &Req) {
  FaultInjector *Faults = Config.Faults;
  // Injected slow client: the handler stalls, proving one trickling
  // connection cannot stall the listener or its peers.
  if (Faults && Faults->maybeDelay(FaultKind::SlowClient, ConnId)) {
    std::lock_guard<std::mutex> G(StatsM);
    ++InjectedSlowClient;
  }

  const uint64_t AdmitNs = steadyNowNs();
  size_t DepthNow = Depth.load(std::memory_order_relaxed);
  if (!Admission.admit(DepthNow)) {
    sendResponse(Fd, RespStatus::RejectedOverload,
                 {{"queue_depth", std::to_string(DepthNow)},
                  {"error", "admission control shed this request"}},
                 steadyNowNs() - AdmitNs, /*Admitted=*/false);
    return true;
  }

  uint64_t DeadlineMs = Req.DeadlineMs ? Req.DeadlineMs
                                       : Config.DefaultDeadlineMs;
  if (DeadlineMs > Config.MaxDeadlineMs)
    DeadlineMs = Config.MaxDeadlineMs;
  const uint64_t DeadlineAtNs = AdmitNs + DeadlineMs * 1000000ull;

  // Compile (or hit the cache) on the connection thread: distinct jobs
  // compile in parallel, identical concurrent jobs single-flight.
  PlanCache::Result Compiled = Cache.getOrCompile(Req, Faults);
  if (!Compiled.Job) {
    sendResponse(Fd, RespStatus::CompileError,
                 {{"error", Compiled.Error}}, steadyNowNs() - AdmitNs,
                 /*Admitted=*/true);
    return true;
  }
  if (steadyNowNs() >= DeadlineAtNs) {
    sendResponse(Fd, RespStatus::DeadlineExceeded,
                 {{"error", "budget exhausted during compilation"},
                  {"stage", "compile"}},
                 steadyNowNs() - AdmitNs, /*Admitted=*/true);
    return true;
  }

  auto J = std::make_shared<ExecJob>();
  J->Req = Req;
  J->Compiled = Compiled.Job;
  J->CacheHit = Compiled.CacheHit;
  J->AdmitNs = AdmitNs;
  J->DeadlineAtNs = DeadlineAtNs;
  {
    std::lock_guard<std::mutex> G(QueueM);
    Queue.push_back(J);
    size_t D = Depth.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard<std::mutex> SG(StatsM);
    if (D > MaxDepthSeen)
      MaxDepthSeen = D;
  }
  QueueCv.notify_one();

  // Wait for the executor, expiring the job ourselves if its budget runs
  // out while still queued. A Running job is waited out: the in-region
  // deadline path bounds it, plus a generous hard cap as the last resort.
  RespStatus Status = RespStatus::InternalError;
  std::vector<std::pair<std::string, std::string>> Kv;
  const uint64_t HardCapNs =
      DeadlineAtNs + (Config.MaxDeadlineMs + 30000) * 1000000ull;
  {
    std::unique_lock<std::mutex> Lk(J->M);
    for (;;) {
      int S = J->State.load(std::memory_order_acquire);
      if (S == ExecJob::Done) {
        Status = J->Status;
        Kv = J->Kv;
        break;
      }
      uint64_t Now = steadyNowNs();
      if (S == ExecJob::Queued && Now >= J->DeadlineAtNs) {
        int Expected = ExecJob::Queued;
        if (J->State.compare_exchange_strong(Expected, ExecJob::Expired)) {
          Status = RespStatus::DeadlineExceeded;
          Kv = {{"error", "budget exhausted while queued"},
                {"stage", "queue"}};
          std::lock_guard<std::mutex> G(StatsM);
          ++ExpiredInQueue;
          break;
        }
        continue; // Raced with the executor claiming it; re-check.
      }
      if (Now >= HardCapNs) {
        Status = RespStatus::InternalError;
        Kv = {{"error", "gave up waiting for the executor"}};
        break;
      }
      if (Stop.load(std::memory_order_acquire)) {
        Status = RespStatus::InternalError;
        Kv = {{"error", "server stopping"}};
        break;
      }
      J->Cv.wait_for(Lk, std::chrono::milliseconds(10));
    }
  }

  // Injected mid-request disconnect: vanish without a reply. The executor
  // (if still running the job) finishes into the shared state and nobody
  // reads it — exactly what a real flaky client causes.
  if (Faults && Faults->fires(FaultKind::ClientDisconnect, ConnId)) {
    std::lock_guard<std::mutex> G(StatsM);
    ++InjectedDisconnects;
    return false;
  }
  return sendResponse(Fd, Status, Kv, steadyNowNs() - AdmitNs,
                      /*Admitted=*/true);
}

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

void Server::Impl::failJob(const std::shared_ptr<ExecJob> &J, RespStatus S,
                           const std::string &Why) {
  {
    std::lock_guard<std::mutex> G(J->M);
    J->Status = S;
    J->Kv = {{"error", Why}};
    J->State.store(ExecJob::Done, std::memory_order_release);
  }
  J->Cv.notify_all();
}

void Server::Impl::execLoop() {
  for (;;) {
    std::shared_ptr<ExecJob> J;
    {
      std::unique_lock<std::mutex> Lk(QueueM);
      QueueCv.wait(Lk, [this] {
        return Stop.load(std::memory_order_acquire) || !Queue.empty();
      });
      if (Stop.load(std::memory_order_acquire)) {
        // Fail whatever is still queued so waiting handlers unblock now.
        while (!Queue.empty()) {
          auto Pending = Queue.front();
          Queue.pop_front();
          Depth.fetch_sub(1, std::memory_order_relaxed);
          int Expected = ExecJob::Queued;
          if (Pending->State.compare_exchange_strong(Expected,
                                                     ExecJob::Running))
            failJob(Pending, RespStatus::InternalError, "server stopping");
        }
        return;
      }
      J = Queue.front();
      Queue.pop_front();
      Depth.fetch_sub(1, std::memory_order_relaxed);
    }

    int Expected = ExecJob::Queued;
    if (!J->State.compare_exchange_strong(Expected, ExecJob::Running))
      continue; // Expired by its handler; the reply already went out.
    try {
      executeJob(J);
    } catch (const std::exception &E) {
      failJob(J, RespStatus::InternalError,
              std::string("executor exception: ") + E.what());
    } catch (...) {
      failJob(J, RespStatus::InternalError, "executor exception");
    }
  }
}

void Server::Impl::executeJob(const std::shared_ptr<ExecJob> &J) {
  const uint64_t Now = steadyNowNs();
  if (Now >= J->DeadlineAtNs) {
    {
      std::lock_guard<std::mutex> G(StatsM);
      ++ExpiredInQueue;
    }
    failJob(J, RespStatus::DeadlineExceeded,
            "budget exhausted while queued");
    return;
  }

  // Per-execution program state: a fresh workload instance (private
  // synthetic inputs + outputs) or the serve recorder for inline source.
  std::unique_ptr<Workload> W;
  ServeRecorder Rec;
  NativeRegistry Natives;
  std::vector<RtValue> Args;
  if (!J->Req.WorkloadName.empty()) {
    W = makeWorkload(J->Req.WorkloadName);
    if (!W) {
      failJob(J, RespStatus::InternalError,
              "workload vanished between compile and execute");
      return;
    }
    W->reset();
    W->registerNatives(Natives);
    int Scale = J->Req.Scale ? J->Req.Scale : W->defaultScale();
    Args = W->args(Scale);
  } else {
    registerServeNatives(Natives, Rec);
    Args = {RtValue::ofInt(J->Req.Scale ? J->Req.Scale : 100)};
  }

  // Circuit breaker: a quarantined plan is bypassed for the sequential
  // scheme — still a correct answer, reported DEGRADED.
  const SchemeReport *Use = J->Compiled->Chosen;
  const bool WantedParallel = Use->Kind != Strategy::Sequential;
  bool BreakerBypassed = false;
  if (WantedParallel && !J->Compiled->Breaker.allowParallel()) {
    Use = J->Compiled->Sequential;
    BreakerBypassed = true;
  }
  const bool RanParallel = Use->Kind != Strategy::Sequential;

  RunConfig Config;
  Config.Plan = RanParallel ? &*Use->Plan : nullptr;
  Config.Simulate = false;
  // Cached native code (backend:jit requests); breaker-bypassed sequential
  // runs still use it — quarantine is about the parallel plan, not codegen.
  Config.Backend = J->Compiled->Jit.get();
  // Route the server's injector into the region so the mixed fault preset
  // exercises in-region degradation, not just the serving path.
  ResilienceConfig Resilience = defaultResilience();
  if (this->Config.Faults) {
    Resilience.Faults = this->Config.Faults;
    Config.Resilience = &Resilience;
  }
  uint64_t RemainingMs = (J->DeadlineAtNs - Now) / 1000000ull;
  Config.DeadlineMs = RemainingMs ? RemainingMs : 1;
  Workload *WPtr = W.get();
  ServeRecorder *RecPtr = &Rec;
  Config.ResetState = [WPtr, RecPtr] {
    if (WPtr)
      WPtr->reset();
    else
      RecPtr->reset();
  };

  RunOutcome Out = runScheme(*J->Compiled->C, J->Compiled->T->F, Args,
                             Natives, Config);

  // Breaker feedback only when the parallel plan actually ran. A blown
  // deadline is the client's budget, not evidence the plan is broken.
  if (RanParallel) {
    if (Out.Status == RunStatus::Ok)
      J->Compiled->Breaker.onParallelSuccess();
    else if (Out.Status == RunStatus::DegradedSequential ||
             Out.Status == RunStatus::InternalError)
      J->Compiled->Breaker.onParallelFault();
  }

  RespStatus S = RespStatus::InternalError;
  switch (Out.Status) {
  case RunStatus::Ok:
    S = BreakerBypassed ? RespStatus::Degraded : RespStatus::Ok;
    break;
  case RunStatus::DegradedSequential:
    S = RespStatus::Degraded;
    break;
  case RunStatus::DeadlineExceeded:
    S = RespStatus::DeadlineExceeded;
    break;
  case RunStatus::InternalError:
    S = RespStatus::InternalError;
    break;
  }

  std::vector<std::pair<std::string, std::string>> Kv;
  if (S == RespStatus::Ok || S == RespStatus::Degraded) {
    uint64_t Digest = W ? W->checksum() : Rec.digest();
    Kv.emplace_back("checksum", hex64(Digest));
    Kv.emplace_back("result", std::to_string(Out.Result.I));
    Kv.emplace_back("iterations", std::to_string(Out.Iterations));
  }
  Kv.emplace_back("wall_ns", std::to_string(Out.WallNs));
  Kv.emplace_back("scheme", Use->Plan ? Use->Plan->describe() : "sequential");
  Kv.emplace_back("cached", J->CacheHit ? "1" : "0");
  if (J->Compiled->Jit)
    Kv.emplace_back("backend", J->Compiled->Jit->name());
  if (BreakerBypassed)
    Kv.emplace_back("breaker", "open");
  if (Out.DegradedWhy != FaultKind::None)
    Kv.emplace_back("degraded_why", faultKindName(Out.DegradedWhy));
  if (!Out.Diagnostic.empty())
    Kv.emplace_back("diagnostic", Out.Diagnostic);

  {
    std::lock_guard<std::mutex> G(J->M);
    J->Status = S;
    J->Kv = std::move(Kv);
    J->State.store(ExecJob::Done, std::memory_order_release);
  }
  J->Cv.notify_all();
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ServerStats Server::Impl::snapshot() const {
  ServerStats S;
  {
    std::lock_guard<std::mutex> G(StatsM);
    S.Connections = Connections;
    S.ConnectionsShed = ConnectionsShed;
    S.Requests = Requests;
    S.BadFrames = BadFrames;
    for (unsigned I = 0; I < NumRespStatuses; ++I)
      S.Replies[I] = Replies[I];
    S.ExpiredInQueue = ExpiredInQueue;
    S.InjectedDisconnects = InjectedDisconnects;
    S.InjectedSlowClient = InjectedSlowClient;
    S.MaxQueueDepth = MaxDepthSeen;
    S.LatencyCount = LatencyNs.count();
    S.LatencyP50Ns = LatencyNs.percentileUpperBound(50);
    S.LatencyP95Ns = LatencyNs.percentileUpperBound(95);
    S.LatencyP99Ns = LatencyNs.percentileUpperBound(99);
    S.LatencyMaxNs = LatencyNs.max();
  }
  S.Cache = Cache.stats();
  S.Admitted = Admission.admitted();
  S.Shed = Admission.shed();
  S.ShedQueueFull = Admission.shedQueueFull();
  S.QueueDepth = Depth.load(std::memory_order_relaxed);
  return S;
}

std::string Server::Impl::statsText() const {
  ServerStats S = snapshot();
  std::ostringstream Os;
  Os << "connections:" << S.Connections << "\n"
     << "connections_shed:" << S.ConnectionsShed << "\n"
     << "requests:" << S.Requests << "\n"
     << "bad_frames:" << S.BadFrames << "\n";
  for (unsigned I = 0; I < NumRespStatuses; ++I) {
    std::string Key = respStatusName(static_cast<RespStatus>(I));
    for (char &C : Key)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    Os << "replies_" << Key << ":" << S.Replies[I] << "\n";
  }
  Os << "expired_in_queue:" << S.ExpiredInQueue << "\n"
     << "injected_disconnects:" << S.InjectedDisconnects << "\n"
     << "injected_slow_client:" << S.InjectedSlowClient << "\n"
     << "admitted:" << S.Admitted << "\n"
     << "shed:" << S.Shed << "\n"
     << "shed_queue_full:" << S.ShedQueueFull << "\n"
     << "queue_depth:" << S.QueueDepth << "\n"
     << "queue_depth_max:" << S.MaxQueueDepth << "\n"
     << "cache_hits:" << S.Cache.Hits << "\n"
     << "cache_misses:" << S.Cache.Misses << "\n"
     << "cache_compiles:" << S.Cache.Compiles << "\n"
     << "cache_compile_failures:" << S.Cache.CompileFailures << "\n"
     << "cache_evictions:" << S.Cache.Evictions << "\n"
     << "cache_size:" << S.Cache.Size << "\n"
     << "breaker_trips:" << S.Cache.BreakerTrips << "\n"
     << "breaker_skips:" << S.Cache.BreakerSkips << "\n"
     << "latency_count:" << S.LatencyCount << "\n"
     << "latency_p50_ns:" << S.LatencyP50Ns << "\n"
     << "latency_p95_ns:" << S.LatencyP95Ns << "\n"
     << "latency_p99_ns:" << S.LatencyP99Ns << "\n"
     << "latency_max_ns:" << S.LatencyMaxNs << "\n";
  return Os.str();
}

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

Server::Server(const ServerConfig &Config) : I(new Impl(Config)) {}

Server::~Server() { stop(); }

bool Server::start(std::string *Err) {
  auto fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why + ": " + std::strerror(errno);
    if (I->ListenFd >= 0) {
      ::close(I->ListenFd);
      I->ListenFd = -1;
    }
    return false;
  };
  if (Running.load(std::memory_order_acquire))
    return true;
  I->ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (I->ListenFd < 0)
    return fail("socket");
  int One = 1;
  ::setsockopt(I->ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(I->Config.Port);
  if (::bind(I->ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0)
    return fail("bind");
  if (::listen(I->ListenFd, 128) < 0)
    return fail("listen");
  socklen_t Len = sizeof(Addr);
  if (::getsockname(I->ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                    &Len) < 0)
    return fail("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  I->Stop.store(false, std::memory_order_release);
  I->Listener = std::thread([this] { I->listenLoop(); });
  I->Executor = std::thread([this] { I->execLoop(); });
  Running.store(true, std::memory_order_release);
  return true;
}

void Server::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  I->Stop.store(true, std::memory_order_release);
  // Listener: unblock poll by closing the socket, then join.
  if (I->Listener.joinable())
    I->Listener.join();
  if (I->ListenFd >= 0) {
    ::close(I->ListenFd);
    I->ListenFd = -1;
  }
  // Executor: fails all queued jobs and exits; waiting handlers notice
  // Stop within one wait tick.
  I->QueueCv.notify_all();
  if (I->Executor.joinable())
    I->Executor.join();
  // Connections: shutdown wakes blocked recv/poll; handlers unwind.
  {
    std::lock_guard<std::mutex> G(I->ConnM);
    for (int Fd : I->ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (;;) {
    std::list<Impl::ConnThread> ToJoin;
    {
      std::lock_guard<std::mutex> G(I->ConnM);
      ToJoin.splice(ToJoin.begin(), I->ConnThreads);
    }
    if (ToJoin.empty())
      break;
    for (auto &CT : ToJoin)
      CT.Th.join();
  }
}

ServerStats Server::stats() const { return I->snapshot(); }

std::string Server::statsText() const { return I->statsText(); }

//===----------------------------------------------------------------------===//
// SyncClient
//===----------------------------------------------------------------------===//

SyncClient::~SyncClient() { close(); }

bool SyncClient::connect(uint16_t Port, std::string *Err) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (Err)
      *Err = std::string("connect: ") + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  Reader = FrameReader();
  return true;
}

void SyncClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool SyncClient::sendRaw(const std::string &Bytes) {
  if (Fd < 0)
    return false;
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool SyncClient::recvResponse(RespStatus &StatusOut, std::string &BodyOut,
                              std::string *Err, uint64_t TimeoutMs) {
  if (Fd < 0)
    return false;
  const uint64_t DeadlineNs = steadyNowNs() + TimeoutMs * 1000000ull;
  char Buf[4096];
  for (;;) {
    Frame F;
    std::string PErr;
    FrameReader::Status St = Reader.next(F, &PErr);
    if (St == FrameReader::Status::Error) {
      if (Err)
        *Err = "protocol error: " + PErr;
      return false;
    }
    if (St == FrameReader::Status::Ready) {
      if (!respStatusFromName(F.Kind, StatusOut)) {
        if (Err)
          *Err = "unknown response status " + F.Kind;
        return false;
      }
      BodyOut = std::move(F.Body);
      return true;
    }
    uint64_t Now = steadyNowNs();
    if (Now >= DeadlineNs) {
      if (Err)
        *Err = "timed out waiting for response";
      return false;
    }
    pollfd P{Fd, POLLIN, 0};
    int R = ::poll(&P, 1,
                   static_cast<int>((DeadlineNs - Now) / 1000000ull) + 1);
    if (R <= 0) {
      if (Err)
        *Err = "timed out waiting for response";
      return false;
    }
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0) {
      if (Err)
        *Err = "connection closed by server";
      return false;
    }
    Reader.feed(Buf, static_cast<size_t>(N));
  }
}

bool SyncClient::request(MsgType Type, const std::string &Body,
                         RespStatus &StatusOut, std::string &BodyOut,
                         std::string *Err, uint64_t TimeoutMs) {
  if (!sendRaw(formatFrame(msgTypeName(Type), Body))) {
    if (Err)
      *Err = "send failed";
    return false;
  }
  return recvResponse(StatusOut, BodyOut, Err, TimeoutMs);
}
