//===- SimPlatform.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Sim/SimPlatform.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace commset;

SimPlatform::SimPlatform(unsigned NumThreads, SyncMode Mode,
                         SimParams Params)
    : NumThreads(NumThreads), Mode(Mode), Params(Params),
      VTime(NumThreads), Chans(static_cast<size_t>(NumThreads) * NumThreads),
      TxStart(NumThreads, 0), TxRetries(NumThreads, 0),
      State(NumThreads, TState::Inactive) {
  for (auto &T : VTime)
    T.store(0, std::memory_order_relaxed);
  // Thread 0 (the master / sequential prefix) is live from the start.
  State[0] = TState::Running;
}

void SimPlatform::charge(unsigned Thread, uint64_t Ns) {
  VTime[Thread].fetch_add(Ns, std::memory_order_relaxed);
}

void SimPlatform::gate(unsigned Thread,
                       std::unique_lock<std::mutex> &Guard) {
  // Compute-bound threads advance their clocks without notifying, so poll.
  auto Minimal = [&] {
    uint64_t Mine = VTime[Thread].load(std::memory_order_relaxed);
    for (unsigned U = 0; U < NumThreads; ++U) {
      if (U == Thread || State[U] != TState::Running)
        continue;
      uint64_t Other = VTime[U].load(std::memory_order_relaxed);
      if (Other < Mine || (Other == Mine && U < Thread))
        return false;
    }
    return true;
  };
  while (!Minimal())
    CV.wait_for(Guard, std::chrono::microseconds(200));
}

void SimPlatform::send(unsigned From, unsigned To, RtValue Value) {
  std::unique_lock<std::mutex> Guard(M);
  Channel &Chan = Chans[static_cast<size_t>(From) * NumThreads + To];

  // Backpressure: pushing entry #n requires entry #(n - capacity) popped;
  // the sender's clock advances to that pop's virtual time (it stalled on
  // a full queue until then).
  uint64_t Seq = Chan.Pushed++;
  if (Seq >= Params.QueueCapacity) {
    uint64_t NeedPopped = Seq - Params.QueueCapacity + 1;
    if (Chan.Popped < NeedPopped) {
      State[From] = TState::Blocked;
      CV.notify_all();
      CV.wait(Guard, [&] { return Chan.Popped >= NeedPopped; });
      State[From] = TState::Running;
    }
    uint64_t FreeTime = Chan.PopTimes[NeedPopped - 1 - Chan.PopBase];
    uint64_t Now = VTime[From].load(std::memory_order_relaxed);
    if (FreeTime > Now)
      VTime[From].store(FreeTime, std::memory_order_relaxed);
  }

  uint64_t Now = VTime[From].load(std::memory_order_relaxed) +
                 Params.SendOverhead;
  VTime[From].store(Now, std::memory_order_relaxed);
  Chan.Items.push_back({Now + Params.CommLatency, Value});
  CV.notify_all();
}

RtValue SimPlatform::recv(unsigned From, unsigned To) {
  std::unique_lock<std::mutex> Guard(M);
  Channel &Chan = Chans[static_cast<size_t>(From) * NumThreads + To];
  if (Chan.Items.empty()) {
    State[To] = TState::Blocked;
    CV.notify_all();
    CV.wait(Guard, [&] { return !Chan.Items.empty(); });
    State[To] = TState::Running;
  }
  auto [Ready, Value] = Chan.Items.front();
  Chan.Items.pop_front();

  uint64_t Now = VTime[To].load(std::memory_order_relaxed);
  uint64_t After = std::max(Now, Ready) + Params.RecvOverhead;
  VTime[To].store(After, std::memory_order_relaxed);
  if (getenv("COMMSET_TRACE_RECV"))
    fprintf(stderr, "recv %u<-%u ready=%lu now=%lu after=%lu\n", To, From,
            (unsigned long)Ready, (unsigned long)Now, (unsigned long)After);

  ++Chan.Popped;
  Chan.PopTimes.push_back(After);
  // Prune pop times already consumed by backpressure checks.
  while (Chan.PopTimes.size() > 2 * Params.QueueCapacity + 4) {
    Chan.PopTimes.pop_front();
    ++Chan.PopBase;
  }
  CV.notify_all();
  return Value;
}

void SimPlatform::acquireLockLike(unsigned Thread, LockState &L,
                                  uint64_t Handoff,
                                  std::unique_lock<std::mutex> &Guard) {
  // Process requests in virtual-time order: gate until this thread holds
  // the minimal clock among runnable threads (no earlier request can still
  // arrive), then enqueue and wait for the grant in request-time order —
  // the host's real schedule must not leak into who gets the lock.
  gate(Thread, Guard);
  uint64_t Request = VTime[Thread].load(std::memory_order_relaxed);
  bool QueuedBehind = L.Held || !L.Waiters.empty();
  auto Key = std::make_pair(Request, Thread);
  L.Waiters.insert(Key);
  if (L.Held || *L.Waiters.begin() != Key) {
    State[Thread] = TState::Blocked;
    CV.notify_all();
    CV.wait(Guard,
            [&] { return !L.Held && *L.Waiters.begin() == Key; });
    State[Thread] = TState::Running;
  }
  L.Waiters.erase(Key);

  uint64_t Now = Request;
  bool Violation = Request < L.LastRequest;
  L.LastRequest = std::max(L.LastRequest, Request);
  bool Contended = !Violation && (QueuedBehind || L.FreeAt > Request);
  if (Contended) {
    ContentionCount.fetch_add(1, std::memory_order_relaxed);
    Now = std::max(Request, L.FreeAt) + Handoff;
  }
  Now += Params.LockAcquire;
  L.Held = true;
  if (Now > VTime[Thread].load(std::memory_order_relaxed))
    VTime[Thread].store(Now, std::memory_order_relaxed);
}

void SimPlatform::lockEnter(unsigned Thread,
                            const std::vector<unsigned> &Ranks) {
  uint64_t Handoff = Mode == SyncMode::Spin ? Params.SpinHandoff
                                            : Params.MutexHandoff;
  std::unique_lock<std::mutex> Guard(M);
  for (unsigned Rank : Ranks)
    acquireLockLike(Thread, Locks[Rank], Handoff, Guard);
}

void SimPlatform::lockExit(unsigned Thread,
                           const std::vector<unsigned> &Ranks) {
  std::lock_guard<std::mutex> Guard(M);
  uint64_t Now = VTime[Thread].load(std::memory_order_relaxed) +
                 Params.LockRelease * Ranks.size();
  VTime[Thread].store(Now, std::memory_order_relaxed);
  for (auto It = Ranks.rbegin(); It != Ranks.rend(); ++It) {
    Locks[*It].Held = false;
    Locks[*It].FreeAt = std::max(Locks[*It].FreeAt, Now);
  }
  CV.notify_all();
}

void SimPlatform::txBegin(unsigned Thread) {
  charge(Thread, Params.TmBegin);
  TxStart[Thread] = VTime[Thread].load(std::memory_order_relaxed);
}

bool SimPlatform::txCommit(unsigned Thread,
                           const std::vector<unsigned> &Ranks,
                           uint64_t MemberCostNs) {
  std::unique_lock<std::mutex> Guard(M);
  gate(Thread, Guard);
  uint64_t Now = VTime[Thread].load(std::memory_order_relaxed);
  bool Conflict = false;
  for (unsigned Rank : Ranks)
    Conflict |= Locks[Rank].LastCommit > TxStart[Thread];
  if (Conflict && TxRetries[Thread] < Params.TmMaxRetries) {
    // Abort: the member re-executes (and re-charges its work).
    TmAbortCount.fetch_add(1, std::memory_order_relaxed);
    ++TxRetries[Thread];
    VTime[Thread].store(Now + Params.TmBegin, std::memory_order_relaxed);
    CV.notify_all();
    return false;
  }
  TxRetries[Thread] = 0;
  Now += Params.TmCommit;
  for (unsigned Rank : Ranks)
    Locks[Rank].LastCommit = Now;
  VTime[Thread].store(Now, std::memory_order_relaxed);
  CV.notify_all();
  return true;
}

void SimPlatform::resourceEnter(unsigned Thread, const std::string &Name) {
  std::unique_lock<std::mutex> Guard(M);
  acquireLockLike(Thread, Resources[Name], Params.ResourceHandoff, Guard);
}

void SimPlatform::resourceExit(unsigned Thread, const std::string &Name) {
  std::lock_guard<std::mutex> Guard(M);
  LockState &L = Resources[Name];
  uint64_t Now = VTime[Thread].load(std::memory_order_relaxed) +
                 Params.LockRelease;
  VTime[Thread].store(Now, std::memory_order_relaxed);
  L.Held = false;
  L.FreeAt = std::max(L.FreeAt, Now);
  CV.notify_all();
}

uint64_t SimPlatform::claimIterations(unsigned Thread, SchedPolicy P,
                                      unsigned Threads, uint64_t &Count) {
  // Grant claims in virtual-time order (ties by id): which worker gets
  // which chunk is then a pure function of the virtual clocks, not of the
  // single-core host's real schedule.
  std::unique_lock<std::mutex> Guard(M);
  gate(Thread, Guard);
  charge(Thread, Params.ChunkClaim);
  uint64_t Begin = ExecPlatform::claimIterations(Thread, P, Threads, Count);
  // The claim advanced this thread's clock: gated claimants behind it can
  // now be minimal, and nothing else may wake them (compute-only workers
  // never notify).
  CV.notify_all();
  return Begin;
}

void SimPlatform::threadDone(unsigned Thread) {
  std::lock_guard<std::mutex> Guard(M);
  State[Thread] = TState::Done;
  CV.notify_all();
}

void SimPlatform::regionBegin(unsigned MasterThread) {
  std::lock_guard<std::mutex> Guard(M);
  uint64_t Base = VTime[MasterThread].load(std::memory_order_relaxed);
  for (unsigned U = 0; U < NumThreads; ++U) {
    VTime[U].store(Base, std::memory_order_relaxed);
    State[U] = TState::Running;
  }
  CV.notify_all();
}

void SimPlatform::regionEnd(unsigned MasterThread) {
  std::lock_guard<std::mutex> Guard(M);
  uint64_t Max = 0;
  for (unsigned U = 0; U < NumThreads; ++U)
    Max = std::max(Max, VTime[U].load(std::memory_order_relaxed));
  VTime[MasterThread].store(Max, std::memory_order_relaxed);
  State[MasterThread] = TState::Running;
  CV.notify_all();
}

uint64_t SimPlatform::elapsedNs() const {
  uint64_t Max = 0;
  for (const auto &T : VTime)
    Max = std::max(Max, T.load(std::memory_order_relaxed));
  return Max;
}
