//===- Diagnostics.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Support/Diagnostics.h"

using namespace commset;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + kindName(Kind) + ": " + Message;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

bool DiagnosticEngine::contains(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
