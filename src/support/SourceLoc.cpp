//===- SourceLoc.cpp ------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Support/SourceLoc.h"

#include "commset/Support/StringUtils.h"

using namespace commset;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return formatString("%u:%u", Line, Col);
}
