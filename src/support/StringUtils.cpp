//===- StringUtils.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace commset;

std::vector<std::string> commset::splitString(std::string_view Text,
                                              char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      return Parts;
    }
    Parts.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view commset::trimString(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() && isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool commset::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.substr(0, Prefix.size()) == Prefix;
}

std::string commset::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len));
    vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Out;
}
