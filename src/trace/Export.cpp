//===- Export.cpp - Chrome trace_event / profile report exporters ---------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Trace/Export.h"

#include "commset/Runtime/FaultInjector.h"
#include "commset/Transform/ParallelPlan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace commset {
namespace trace {

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C & 0xff);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// ns -> trace_event microseconds with ns precision.
std::string tsUs(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
  return Buf;
}

std::string fmtNs(uint64_t Ns) {
  char Buf[32];
  if (Ns < 1000)
    std::snprintf(Buf, sizeof(Buf), "%lluns",
                  static_cast<unsigned long long>(Ns));
  else if (Ns < 1000 * 1000)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", Ns / 1e3);
  else if (Ns < 1000ull * 1000 * 1000)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Ns / 1e6);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3fs", Ns / 1e9);
  return Buf;
}

struct SpanOpen {
  EventKind Kind;
  std::string Name;
};

/// Appends one complete trace_event JSON object to \p Os.
void appendEvent(std::ostream &Os, bool &First, const std::string &Ph,
                 const std::string &Name, uint64_t TsNs, uint32_t Tid,
                 const std::string &ArgsJson) {
  if (!First)
    Os << ",\n";
  First = false;
  Os << "{\"name\":\"" << jsonEscape(Name) << "\",\"cat\":\"commset\",\"ph\":\""
     << Ph << "\",\"ts\":" << tsUs(TsNs) << ",\"pid\":1,\"tid\":" << Tid;
  if (Ph == "i")
    Os << ",\"s\":\"t\"";
  if (!ArgsJson.empty())
    Os << ",\"args\":{" << ArgsJson << "}";
  Os << "}";
}

std::string queueName(uint64_t Qid) {
  std::ostringstream Os;
  Os << "q" << (Qid >> 16) << "->" << (Qid & 0xffff);
  return Os.str();
}

} // namespace

std::string chromeTraceJson(const std::vector<TraceEvent> &Events,
                            const TraceSession &S) {
  std::vector<TraceEvent> Sorted = Events;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const TraceEvent &L, const TraceEvent &R) {
              if (L.TsNs != R.TsNs)
                return L.TsNs < R.TsNs;
              return L.Tid < R.Tid;
            });

  std::ostringstream Os;
  Os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool First = true;

  // Thread-name metadata rows so chrome://tracing shows commset-wN tracks.
  std::set<uint32_t> Tids;
  for (const TraceEvent &E : Sorted)
    Tids.insert(E.Tid);
  for (uint32_t Tid : Tids) {
    std::ostringstream Name;
    if (Tid == 0)
      Name << "commset-w0 (main)";
    else
      Name << "commset-w" << Tid;
    if (!First)
      Os << ",\n";
    First = false;
    Os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << Tid
       << ",\"args\":{\"name\":\"" << jsonEscape(Name.str()) << "\"}}";
  }

  // Per-tid open-span stacks: emit B/E only in properly nested pairs. A
  // close with no matching open is dropped; opens left dangling (fault
  // truncation, ring drops) are closed at the thread's last timestamp so
  // the exported trace always balances.
  std::map<uint32_t, std::vector<SpanOpen>> Open;
  std::map<uint32_t, uint64_t> LastTs;

  auto openSpan = [&](const TraceEvent &E, const std::string &Name,
                      const std::string &Args) {
    appendEvent(Os, First, "B", Name, E.TsNs, E.Tid, Args);
    Open[E.Tid].push_back({static_cast<EventKind>(E.Kind), Name});
  };
  auto closeSpan = [&](const TraceEvent &E, EventKind OpenKind,
                       const std::string &Args) {
    auto &Stack = Open[E.Tid];
    if (Stack.empty() || Stack.back().Kind != OpenKind)
      return; // unmatched close: drop rather than corrupt nesting
    appendEvent(Os, First, "E", Stack.back().Name, E.TsNs, E.Tid, Args);
    Stack.pop_back();
  };

  for (const TraceEvent &E : Sorted) {
    LastTs[E.Tid] = E.TsNs;
    EventKind K = static_cast<EventKind>(E.Kind);
    std::ostringstream Args;
    switch (K) {
    case EventKind::RegionBegin: {
      std::ostringstream Name;
      Name << "region:"
           << strategyName(static_cast<Strategy>(E.A));
      Args << "\"tasks\":" << E.B;
      openSpan(E, Name.str(), Args.str());
      break;
    }
    case EventKind::RegionEnd:
      closeSpan(E, EventKind::RegionBegin, "");
      break;
    case EventKind::TaskDispatch:
      Args << "\"worker\":" << E.Tid;
      openSpan(E, "task", Args.str());
      break;
    case EventKind::TaskComplete:
      Args << "\"faulted\":" << (E.A ? "true" : "false");
      closeSpan(E, EventKind::TaskDispatch, Args.str());
      break;
    case EventKind::MemberEnter: {
      std::string Member = S.nameOf(E.A);
      openSpan(E, "member:" + (Member.empty() ? "?" : Member), "");
      break;
    }
    case EventKind::MemberExit:
      closeSpan(E, EventKind::MemberEnter, "");
      break;

    case EventKind::LockContend:
      Args << "\"rank\":" << E.A;
      appendEvent(Os, First, "i", "lock-contend", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::LockAcquire:
      Args << "\"rank\":" << E.A << ",\"waitNs\":" << E.B;
      appendEvent(Os, First, "i", "lock-acquire", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::LockRelease:
      Args << "\"rank\":" << E.A;
      appendEvent(Os, First, "i", "lock-release", E.TsNs, E.Tid, Args.str());
      break;

    case EventKind::StmBegin:
    case EventKind::StmCommit:
    case EventKind::StmAbort:
    case EventKind::StmRetry:
    case EventKind::StmExhaust: {
      std::string Member = S.nameOf(E.A);
      Args << "\"set\":\"" << jsonEscape(Member.empty() ? "?" : Member)
           << "\",\"attempts\":" << E.B;
      appendEvent(Os, First, "i", eventKindName(K), E.TsNs, E.Tid, Args.str());
      break;
    }

    case EventKind::QueuePush:
    case EventKind::QueuePop:
      Args << "\"queue\":\"" << queueName(E.A) << "\",\"occupancy\":" << E.B;
      appendEvent(Os, First, "i", eventKindName(K), E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::QueueBlock:
      Args << "\"queue\":\"" << queueName(E.A) << "\",\"blockedNs\":" << E.B;
      appendEvent(Os, First, "i", "queue-block", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::QueuePoison:
      Args << "\"queue\":\"" << queueName(E.A) << "\"";
      appendEvent(Os, First, "i", "queue-poison", E.TsNs, E.Tid, Args.str());
      break;

    case EventKind::ChunkClaim:
      Args << "\"begin\":" << E.A << ",\"count\":" << E.B;
      appendEvent(Os, First, "i", "chunk-claim", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::Steal:
      Args << "\"victim\":" << E.A << ",\"iters\":" << E.B;
      appendEvent(Os, First, "i", "steal", E.TsNs, E.Tid, Args.str());
      break;

    case EventKind::PrivTouch:
      Args << "\"slot\":" << E.A << ",\"store\":" << (E.B ? "true" : "false");
      appendEvent(Os, First, "i", "priv-touch", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::PrivMerge:
      Args << "\"slot\":" << E.A << ",\"worker\":" << E.B;
      appendEvent(Os, First, "i", "priv-merge", E.TsNs, E.Tid, Args.str());
      break;

    case EventKind::ServeAdmit:
      Args << "\"admitted\":" << (E.A ? "true" : "false")
           << ",\"queueDepth\":" << E.B;
      appendEvent(Os, First, "i", "serve-admit", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::ServeReply:
      Args << "\"status\":" << E.A << ",\"latencyNs\":" << E.B;
      appendEvent(Os, First, "i", "serve-reply", E.TsNs, E.Tid, Args.str());
      break;

    case EventKind::FaultInject:
      Args << "\"fault\":\""
           << faultKindName(static_cast<FaultKind>(E.A)) << "\"";
      appendEvent(Os, First, "i", "fault-inject", E.TsNs, E.Tid, Args.str());
      break;
    case EventKind::Degrade:
      Args << "\"fault\":\""
           << faultKindName(static_cast<FaultKind>(E.A)) << "\"";
      appendEvent(Os, First, "i", "degrade", E.TsNs, E.Tid, Args.str());
      break;

    case EventKind::None:
      break;
    }
  }

  // Close any dangling spans at the owning thread's last timestamp.
  for (auto &KV : Open) {
    uint64_t Ts = LastTs[KV.first];
    while (!KV.second.empty()) {
      appendEvent(Os, First, "E", KV.second.back().Name, Ts, KV.first, "");
      KV.second.pop_back();
    }
  }

  Os << "\n]}\n";
  return Os.str();
}

bool writeChromeTraceFile(const std::vector<TraceEvent> &Events,
                          const TraceSession &S, const std::string &Path,
                          std::string *Error) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = "cannot open trace output file: " + Path;
    return false;
  }
  Out << chromeTraceJson(Events, S);
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write failed: " + Path;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Chrome-trace validation: a small but complete JSON parser plus the
// structural checks the acceptance criteria name (monotone per-tid ts,
// balanced B/E nesting).
//===----------------------------------------------------------------------===//

namespace {

struct JsonValue {
  enum Type { Null, Bool, Num, Str, Arr, Obj } T = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JsonValue> A;
  std::vector<std::pair<std::string, JsonValue>> O;

  const JsonValue *field(const std::string &Key) const {
    for (const auto &KV : O)
      if (KV.first == Key)
        return &KV.second;
    return nullptr;
  }
};

class JsonParser {
public:
  JsonParser(const std::string &Text) : S(Text) {}

  bool parse(JsonValue &Out, std::string &Err) {
    if (!value(Out, Err))
      return false;
    ws();
    if (P != S.size()) {
      Err = "trailing garbage at offset " + std::to_string(P);
      return false;
    }
    return true;
  }

private:
  const std::string &S;
  size_t P = 0;

  void ws() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\t' || S[P] == '\n' ||
                            S[P] == '\r'))
      ++P;
  }

  bool fail(std::string &Err, const std::string &What) {
    Err = What + " at offset " + std::to_string(P);
    return false;
  }

  bool literal(const char *Lit, std::string &Err) {
    size_t Len = std::string(Lit).size();
    if (S.compare(P, Len, Lit) != 0)
      return fail(Err, std::string("expected '") + Lit + "'");
    P += Len;
    return true;
  }

  bool string(std::string &Out, std::string &Err) {
    if (P >= S.size() || S[P] != '"')
      return fail(Err, "expected string");
    ++P;
    Out.clear();
    while (P < S.size() && S[P] != '"') {
      char C = S[P];
      if (C == '\\') {
        if (P + 1 >= S.size())
          return fail(Err, "truncated escape");
        char E = S[P + 1];
        P += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (P + 4 > S.size())
            return fail(Err, "truncated \\u escape");
          for (int I = 0; I < 4; ++I)
            if (!std::isxdigit(static_cast<unsigned char>(S[P + I])))
              return fail(Err, "bad \\u escape");
          Out += '?'; // code point identity is irrelevant for validation
          P += 4;
          break;
        }
        default:
          return fail(Err, "bad escape");
        }
      } else {
        Out += C;
        ++P;
      }
    }
    if (P >= S.size())
      return fail(Err, "unterminated string");
    ++P; // closing quote
    return true;
  }

  bool number(double &Out, std::string &Err) {
    size_t Start = P;
    if (P < S.size() && (S[P] == '-' || S[P] == '+'))
      ++P;
    bool Digits = false;
    auto digits = [&]() {
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P]))) {
        ++P;
        Digits = true;
      }
    };
    digits();
    if (P < S.size() && S[P] == '.') {
      ++P;
      digits();
    }
    if (P < S.size() && (S[P] == 'e' || S[P] == 'E')) {
      ++P;
      if (P < S.size() && (S[P] == '-' || S[P] == '+'))
        ++P;
      digits();
    }
    if (!Digits)
      return fail(Err, "expected number");
    Out = std::strtod(S.substr(Start, P - Start).c_str(), nullptr);
    return true;
  }

  bool value(JsonValue &Out, std::string &Err) {
    ws();
    if (P >= S.size())
      return fail(Err, "unexpected end of input");
    char C = S[P];
    if (C == '{') {
      ++P;
      Out.T = JsonValue::Obj;
      ws();
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      while (true) {
        ws();
        std::string Key;
        if (!string(Key, Err))
          return false;
        ws();
        if (P >= S.size() || S[P] != ':')
          return fail(Err, "expected ':'");
        ++P;
        JsonValue V;
        if (!value(V, Err))
          return false;
        Out.O.emplace_back(std::move(Key), std::move(V));
        ws();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        if (P < S.size() && S[P] == '}') {
          ++P;
          return true;
        }
        return fail(Err, "expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++P;
      Out.T = JsonValue::Arr;
      ws();
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      while (true) {
        JsonValue V;
        if (!value(V, Err))
          return false;
        Out.A.push_back(std::move(V));
        ws();
        if (P < S.size() && S[P] == ',') {
          ++P;
          continue;
        }
        if (P < S.size() && S[P] == ']') {
          ++P;
          return true;
        }
        return fail(Err, "expected ',' or ']'");
      }
    }
    if (C == '"') {
      Out.T = JsonValue::Str;
      return string(Out.S, Err);
    }
    if (C == 't') {
      Out.T = JsonValue::Bool;
      Out.B = true;
      return literal("true", Err);
    }
    if (C == 'f') {
      Out.T = JsonValue::Bool;
      Out.B = false;
      return literal("false", Err);
    }
    if (C == 'n') {
      Out.T = JsonValue::Null;
      return literal("null", Err);
    }
    Out.T = JsonValue::Num;
    return number(Out.N, Err);
  }
};

} // namespace

bool validateChromeTrace(const std::string &Json, std::string *Error) {
  auto fail = [&](const std::string &Why) {
    if (Error)
      *Error = Why;
    return false;
  };

  JsonValue Root;
  std::string ParseErr;
  if (!JsonParser(Json).parse(Root, ParseErr))
    return fail("malformed JSON: " + ParseErr);
  if (Root.T != JsonValue::Obj)
    return fail("top level is not an object");
  const JsonValue *EventsV = Root.field("traceEvents");
  if (!EventsV || EventsV->T != JsonValue::Arr)
    return fail("missing traceEvents array");
  if (EventsV->A.empty())
    return fail("traceEvents is empty");

  std::map<long long, double> LastTs;
  std::map<long long, long long> Depth;
  size_t Spans = 0;
  for (size_t I = 0; I < EventsV->A.size(); ++I) {
    const JsonValue &E = EventsV->A[I];
    if (E.T != JsonValue::Obj)
      return fail("traceEvents[" + std::to_string(I) + "] is not an object");
    const JsonValue *Ph = E.field("ph");
    const JsonValue *Name = E.field("name");
    const JsonValue *Tid = E.field("tid");
    if (!Ph || Ph->T != JsonValue::Str)
      return fail("event " + std::to_string(I) + " missing ph");
    if (!Name || Name->T != JsonValue::Str)
      return fail("event " + std::to_string(I) + " missing name");
    if (!Tid || Tid->T != JsonValue::Num)
      return fail("event " + std::to_string(I) + " missing tid");
    if (Ph->S == "M")
      continue; // metadata rows carry no timestamp
    const JsonValue *Ts = E.field("ts");
    if (!Ts || Ts->T != JsonValue::Num)
      return fail("event " + std::to_string(I) + " missing ts");
    long long T = static_cast<long long>(Tid->N);
    auto It = LastTs.find(T);
    if (It != LastTs.end() && Ts->N < It->second)
      return fail("non-monotone ts on tid " + std::to_string(T) +
                  " at event " + std::to_string(I));
    LastTs[T] = Ts->N;
    if (Ph->S == "B") {
      ++Depth[T];
      ++Spans;
    } else if (Ph->S == "E") {
      if (--Depth[T] < 0)
        return fail("unbalanced E on tid " + std::to_string(T) +
                    " at event " + std::to_string(I));
    } else if (Ph->S != "i") {
      return fail("unexpected ph '" + Ph->S + "' at event " +
                  std::to_string(I));
    }
  }
  for (const auto &KV : Depth)
    if (KV.second != 0)
      return fail("unclosed B span(s) on tid " + std::to_string(KV.first));
  (void)Spans;
  return true;
}

//===----------------------------------------------------------------------===//
// Profile report
//===----------------------------------------------------------------------===//

void writeProfileReport(const TraceMetrics &M, std::ostream &Os) {
  Os << "=== CommTrace profile ===\n";
  Os << "events: " << M.Events << " recorded, " << M.Dropped << " dropped\n";
  Os << "regions: " << M.Regions << " parallel region(s), total "
     << fmtNs(M.RegionNs) << "\n";

  if (!M.Workers.empty()) {
    Os << "workers:\n";
    for (const auto &KV : M.Workers) {
      const WorkerStats &W = KV.second;
      Os << "  commset-w" << KV.first << ": " << W.Tasks << " task(s), busy "
         << fmtNs(W.BusyNs);
      if (M.RegionNs && W.Tasks)
        Os << " (" << static_cast<int>(100.0 * W.BusyNs / M.RegionNs + 0.5)
           << "% of region)";
      if (W.Faulted)
        Os << ", " << W.Faulted << " faulted";
      Os << ", " << W.Events << " events\n";
    }
    if (M.TaskNs.count())
      Os << "  task latency: mean " << fmtNs(static_cast<uint64_t>(
             M.TaskNs.mean()))
         << ", p95 <= " << fmtNs(M.TaskNs.percentileUpperBound(95))
         << ", max " << fmtNs(M.TaskNs.max()) << "\n";
    if (M.totalClaims()) {
      Os << "  scheduling: " << M.totalClaims() << " chunk claim(s), "
         << M.totalSteals() << " steal(s); per-worker iterations";
      for (const auto &KV : M.Workers) {
        if (!KV.second.Claims && !KV.second.Steals)
          continue;
        Os << " w" << KV.first << "="
           << (KV.second.ClaimedIters + KV.second.StolenIters);
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.2f", M.claimImbalance());
      Os << "; load imbalance " << Buf << " (1.00 = perfect)\n";
    }
  }

  Os << "locks:";
  if (M.Locks.empty())
    Os << " none\n";
  else {
    Os << "\n";
    for (const auto &KV : M.Locks) {
      const LockRankStats &L = KV.second;
      double Pct = L.Acquires
                       ? 100.0 * L.Contentions / L.Acquires
                       : 0.0;
      Os << "  rank " << KV.first << ": " << L.Acquires << " acquires, "
         << L.Contentions << " contended (";
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%.1f%%", Pct);
      Os << Buf << "), wait total " << fmtNs(L.WaitNs) << ", max "
         << fmtNs(L.MaxWaitNs) << "\n";
    }
    if (M.LockWaitNs.count())
      Os << "  lock wait: p50 <= "
         << fmtNs(M.LockWaitNs.percentileUpperBound(50)) << ", p95 <= "
         << fmtNs(M.LockWaitNs.percentileUpperBound(95)) << ", max "
         << fmtNs(M.LockWaitNs.max()) << "\n";
  }

  Os << "stm:";
  if (M.StmBegins == 0)
    Os << " none\n";
  else {
    Os << "\n";
    for (const auto &KV : M.StmSets) {
      const StmSetStats &T = KV.second;
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "%.1f%%", 100.0 * T.abortRate());
      Os << "  set '" << (T.Name.empty() ? "?" : T.Name) << "': " << T.Begins
         << " begins, " << T.Commits << " commits, " << T.Aborts
         << " aborts (" << Buf << "), " << T.Retries << " retries, "
         << T.Exhausts << " exhausted\n";
    }
  }

  Os << "queues:";
  if (M.Queues.empty())
    Os << " none\n";
  else {
    Os << "\n";
    for (const auto &KV : M.Queues) {
      const QueueStats &Q = KV.second;
      Os << "  " << queueName(KV.first) << ": " << Q.Pushes << " pushes, "
         << Q.Pops << " pops, " << Q.Blocks << " blocks ("
         << fmtNs(Q.BlockNs) << "), max occupancy " << Q.MaxOccupancy;
      if (Q.Poisons)
        Os << ", poisoned";
      Os << "\n";
    }
  }

  Os << "privatization:";
  if (!M.PrivTouches && !M.PrivMerges)
    Os << " none\n";
  else {
    Os << "\n";
    for (const auto &KV : M.PrivSlots) {
      const PrivSlotStats &P = KV.second;
      Os << "  slot " << KV.first << ": " << P.Touches
         << " replica touch(es) (" << P.Stores << " stores), " << P.Merges
         << " merge contribution(s)\n";
    }
    Os << "  total: " << M.PrivTouches << " touches, " << M.PrivMerges
       << " merges\n";
  }

  Os << "member calls: " << M.MemberCalls << "\n";

  Os << "faults injected:";
  if (M.FaultsInjected.empty())
    Os << " none\n";
  else {
    for (const auto &KV : M.FaultsInjected)
      Os << " " << faultKindName(static_cast<FaultKind>(KV.first)) << " x"
         << KV.second;
    Os << "\n";
  }

  Os << "degradations:";
  if (M.Degradations.empty())
    Os << " none\n";
  else {
    for (const auto &D : M.Degradations)
      Os << " " << faultKindName(static_cast<FaultKind>(D.first))
         << "@w" << D.second;
    Os << "\n";
  }
}

std::string profileReport(const TraceMetrics &M) {
  std::ostringstream Os;
  writeProfileReport(M, Os);
  return Os.str();
}

} // namespace trace
} // namespace commset
