//===- Metrics.cpp - CommTrace drain-time aggregation ---------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Trace/Metrics.h"

#include <algorithm>
#include <map>

namespace commset {
namespace trace {

TraceMetrics aggregateMetrics(const std::vector<TraceEvent> &Events,
                              const TraceSession &S) {
  TraceMetrics M;
  M.Events = Events.size();
  M.Dropped = S.dropped();

  // Open-span bookkeeping. Events arrive sorted by timestamp, so a simple
  // last-open match per key is enough; spans left open by a faulted run
  // simply do not contribute to the duration sums.
  std::map<unsigned, uint64_t> OpenTask;  // tid -> dispatch ts
  uint64_t OpenRegionTs = 0;
  bool RegionOpen = false;

  for (const TraceEvent &E : Events) {
    M.Workers[E.Tid].Events++;
    switch (static_cast<EventKind>(E.Kind)) {
    case EventKind::RegionBegin:
      ++M.Regions;
      OpenRegionTs = E.TsNs;
      RegionOpen = true;
      break;
    case EventKind::RegionEnd:
      if (RegionOpen && E.TsNs >= OpenRegionTs)
        M.RegionNs += E.TsNs - OpenRegionTs;
      RegionOpen = false;
      break;

    case EventKind::TaskDispatch:
      M.Workers[E.Tid].Tasks++;
      OpenTask[E.Tid] = E.TsNs;
      break;
    case EventKind::TaskComplete: {
      auto It = OpenTask.find(E.Tid);
      if (It != OpenTask.end() && E.TsNs >= It->second) {
        uint64_t Ns = E.TsNs - It->second;
        M.Workers[E.Tid].BusyNs += Ns;
        M.TaskNs.add(Ns);
        OpenTask.erase(It);
      }
      if (E.A)
        M.Workers[E.Tid].Faulted++;
      break;
    }

    case EventKind::MemberEnter:
      ++M.MemberCalls;
      break;
    case EventKind::MemberExit:
      break;

    case EventKind::LockContend:
      M.Locks[static_cast<unsigned>(E.A)].Contentions++;
      break;
    case EventKind::LockAcquire: {
      LockRankStats &L = M.Locks[static_cast<unsigned>(E.A)];
      L.Acquires++;
      L.WaitNs += E.B;
      if (E.B > L.MaxWaitNs)
        L.MaxWaitNs = E.B;
      M.LockWaitNs.add(E.B);
      break;
    }
    case EventKind::LockRelease:
      break;

    case EventKind::StmBegin:
      ++M.StmBegins;
      M.StmSets[E.A].Begins++;
      break;
    case EventKind::StmCommit:
      ++M.StmCommits;
      M.StmSets[E.A].Commits++;
      break;
    case EventKind::StmAbort:
      ++M.StmAborts;
      M.StmSets[E.A].Aborts++;
      break;
    case EventKind::StmRetry:
      ++M.StmRetries;
      M.StmSets[E.A].Retries++;
      break;
    case EventKind::StmExhaust:
      ++M.StmExhausts;
      M.StmSets[E.A].Exhausts++;
      break;

    case EventKind::QueuePush: {
      QueueStats &Q = M.Queues[E.A];
      Q.Pushes++;
      if (E.B > Q.MaxOccupancy)
        Q.MaxOccupancy = E.B;
      M.QueueOccupancy.add(E.B);
      break;
    }
    case EventKind::QueuePop:
      M.Queues[E.A].Pops++;
      break;
    case EventKind::QueueBlock: {
      QueueStats &Q = M.Queues[E.A];
      Q.Blocks++;
      Q.BlockNs += E.B;
      M.QueueBlockNs += E.B;
      break;
    }
    case EventKind::QueuePoison:
      M.Queues[E.A].Poisons++;
      break;

    case EventKind::ChunkClaim: {
      WorkerStats &W = M.Workers[E.Tid];
      W.Claims++;
      W.ClaimedIters += E.B;
      break;
    }
    case EventKind::Steal: {
      WorkerStats &W = M.Workers[E.Tid];
      W.Steals++;
      W.StolenIters += E.B;
      // The stolen iterations were counted as claimed by the victim;
      // subtract (saturating: the events may be interleaved oddly in a
      // truncated trace) so per-worker totals reflect executed work.
      WorkerStats &V = M.Workers[static_cast<unsigned>(E.A)];
      V.ClaimedIters -= std::min(V.ClaimedIters, E.B);
      break;
    }

    case EventKind::PrivTouch: {
      ++M.PrivTouches;
      M.Workers[E.Tid].PrivTouches++;
      PrivSlotStats &P = M.PrivSlots[static_cast<unsigned>(E.A)];
      P.Touches++;
      if (E.B) {
        ++M.PrivStores;
        P.Stores++;
      }
      break;
    }
    case EventKind::PrivMerge:
      ++M.PrivMerges;
      M.PrivSlots[static_cast<unsigned>(E.A)].Merges++;
      break;

    case EventKind::ServeAdmit:
      if (E.A)
        ++M.ServeAdmits;
      else
        ++M.ServeSheds;
      break;
    case EventKind::ServeReply:
      ++M.ServeReplies;
      M.ServeLatencyNs.add(E.B);
      break;

    case EventKind::FaultInject:
      M.FaultsInjected[static_cast<unsigned>(E.A)]++;
      break;
    case EventKind::Degrade:
      M.Degradations.emplace_back(static_cast<unsigned>(E.A), E.Tid);
      break;

    case EventKind::None:
      break;
    }
  }

  for (auto &KV : M.StmSets)
    KV.second.Name = S.nameOf(KV.first);
  return M;
}

} // namespace trace
} // namespace commset
