//===- Trace.cpp - CommTrace session implementation -----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Trace/Trace.h"

#include <algorithm>

namespace commset {
namespace trace {

std::atomic<uint32_t> GEnabled{0};

TraceSession &session() {
  static TraceSession S;
  return S;
}

const char *eventKindName(EventKind K) {
  switch (K) {
  case EventKind::None:
    return "none";
  case EventKind::RegionBegin:
    return "region-begin";
  case EventKind::RegionEnd:
    return "region-end";
  case EventKind::TaskDispatch:
    return "task-dispatch";
  case EventKind::TaskComplete:
    return "task-complete";
  case EventKind::MemberEnter:
    return "member-enter";
  case EventKind::MemberExit:
    return "member-exit";
  case EventKind::LockContend:
    return "lock-contend";
  case EventKind::LockAcquire:
    return "lock-acquire";
  case EventKind::LockRelease:
    return "lock-release";
  case EventKind::StmBegin:
    return "stm-begin";
  case EventKind::StmCommit:
    return "stm-commit";
  case EventKind::StmAbort:
    return "stm-abort";
  case EventKind::StmRetry:
    return "stm-retry";
  case EventKind::StmExhaust:
    return "stm-exhaust";
  case EventKind::QueuePush:
    return "queue-push";
  case EventKind::QueuePop:
    return "queue-pop";
  case EventKind::QueueBlock:
    return "queue-block";
  case EventKind::QueuePoison:
    return "queue-poison";
  case EventKind::FaultInject:
    return "fault-inject";
  case EventKind::Degrade:
    return "degrade";
  case EventKind::ChunkClaim:
    return "chunk-claim";
  case EventKind::Steal:
    return "steal";
  case EventKind::PrivTouch:
    return "priv-touch";
  case EventKind::PrivMerge:
    return "priv-merge";
  case EventKind::ServeAdmit:
    return "serve-admit";
  case EventKind::ServeReply:
    return "serve-reply";
  }
  return "unknown";
}

void TraceSession::enable(size_t CapacityPerThread, unsigned RingCount) {
  // Control plane: callers arm tracing between runs, never while a traced
  // region is executing, so tearing down the old rings is safe.
  GEnabled.store(0, std::memory_order_seq_cst);
  if (RingCount == 0)
    RingCount = 1;
  if (RingCount > MaxRings)
    RingCount = MaxRings;
  if (CapacityPerThread == 0)
    CapacityPerThread = 1;
  Rings.clear();
  Rings.reserve(RingCount);
  for (unsigned I = 0; I < RingCount; ++I) {
    auto R = std::make_unique<Ring>();
    R->Slots = std::vector<Slot>(CapacityPerThread);
    Rings.push_back(std::move(R));
  }
  Epoch = std::chrono::steady_clock::now();
  Active.store(true, std::memory_order_relaxed);
  GEnabled.store(1, std::memory_order_seq_cst);
}

void TraceSession::disable() {
  GEnabled.store(0, std::memory_order_seq_cst);
  Active.store(false, std::memory_order_relaxed);
}

bool TraceSession::active() const {
  return Active.load(std::memory_order_relaxed);
}

void TraceSession::record(EventKind K, uint32_t Tid, uint64_t A, uint64_t B) {
  if (Rings.empty())
    return;
  // Out-of-range tids (rare: oversized pipelines) share the last ring but
  // keep their real Tid in the event, so attribution stays correct.
  size_t Index = Tid < Rings.size() ? Tid : Rings.size() - 1;
  Ring &R = *Rings[Index];
  uint64_t Claim = R.Next.fetch_add(1, std::memory_order_relaxed);
  if (Claim >= R.Slots.size()) {
    R.Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot &S = R.Slots[Claim];
  S.Ev.TsNs = nowNs();
  S.Ev.Kind = static_cast<uint32_t>(K);
  S.Ev.Tid = Tid;
  S.Ev.A = A;
  S.Ev.B = B;
  S.Ready.store(1, std::memory_order_release);
}

std::vector<TraceEvent> TraceSession::collect() const {
  std::vector<TraceEvent> Out;
  for (const auto &RPtr : Rings) {
    const Ring &R = *RPtr;
    uint64_t Published =
        std::min<uint64_t>(R.Next.load(std::memory_order_acquire),
                           R.Slots.size());
    for (uint64_t I = 0; I < Published; ++I) {
      const Slot &S = R.Slots[I];
      if (S.Ready.load(std::memory_order_acquire))
        Out.push_back(S.Ev);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &L, const TraceEvent &R) {
              if (L.TsNs != R.TsNs)
                return L.TsNs < R.TsNs;
              return L.Tid < R.Tid;
            });
  return Out;
}

uint64_t TraceSession::dropped() const {
  uint64_t Total = 0;
  for (const auto &RPtr : Rings)
    Total += RPtr->Dropped.load(std::memory_order_relaxed);
  return Total;
}

uint64_t TraceSession::internName(const std::string &S) {
  std::lock_guard<std::mutex> Guard(NamesMutex);
  auto It = NameIds.find(S);
  if (It != NameIds.end())
    return It->second;
  NamesById.push_back(S);
  uint64_t Id = NamesById.size(); // ids start at 1; 0 means "no name"
  NameIds.emplace(S, Id);
  return Id;
}

std::string TraceSession::nameOf(uint64_t Id) const {
  std::lock_guard<std::mutex> Guard(NamesMutex);
  if (Id == 0 || Id > NamesById.size())
    return "";
  return NamesById[Id - 1];
}

} // namespace trace
} // namespace commset
