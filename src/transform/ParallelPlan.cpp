//===- ParallelPlan.cpp ---------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Transform/ParallelPlan.h"

#include "commset/Support/StringUtils.h"

using namespace commset;

const char *commset::strategyName(Strategy S) {
  switch (S) {
  case Strategy::Sequential:
    return "Sequential";
  case Strategy::Doall:
    return "DOALL";
  case Strategy::Dswp:
    return "DSWP";
  case Strategy::PsDswp:
    return "PS-DSWP";
  }
  return "?";
}

const char *commset::syncModeName(SyncMode M) {
  switch (M) {
  case SyncMode::Mutex:
    return "Mutex";
  case SyncMode::Spin:
    return "Spin";
  case SyncMode::Tm:
    return "TM";
  case SyncMode::None:
    return "Lib";
  case SyncMode::Priv:
    return "Priv";
  }
  return "?";
}

std::string ParallelPlan::describe() const {
  std::string Out = strategyName(Kind);
  if (Kind == Strategy::Doall) {
    Out += formatString("(%u threads)", NumThreads);
  } else if (Kind == Strategy::Dswp || Kind == Strategy::PsDswp) {
    Out += " [";
    for (size_t I = 0; I < Stages.size(); ++I) {
      if (I)
        Out += ", ";
      if (Stages[I].Parallel)
        Out += formatString("DOALL(%u)", Stages[I].Replicas);
      else
        Out += "S";
    }
    Out += "]";
  }
  if (Kind != Strategy::Sequential) {
    Out += " + ";
    Out += syncModeName(Sync);
    Out += formatString(", sched=%s", schedPolicyName(Sched));
  }
  return Out;
}
