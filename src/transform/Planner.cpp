//===- Planner.cpp --------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Transform/Planner.h"

#include "commset/Analysis/Dominators.h"
#include "commset/Analysis/LoopInfo.h"
#include "commset/IR/Printer.h"
#include "commset/Support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cassert>
#include <functional>

using namespace commset;

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

namespace {
constexpr double BaseOpCost = 2.0;     // ns per simple IR operation.
constexpr double LoopTripGuess = 16.0; // Nesting factor for callee loops.
constexpr unsigned MaxCostDepth = 8;
} // namespace

CostEstimator::CostEstimator(const Module &M, const PlanOptions &Opts)
    : Opts(Opts) {
  for (const auto &F : M.Functions)
    FunctionCosts[F.get()] = functionCost(F.get(), 0);
}

double CostEstimator::functionCost(const Function *F, unsigned Depth) const {
  if (Depth >= MaxCostDepth)
    return Opts.DefaultNativeCost;
  auto It = FunctionCosts.find(F);
  if (It != FunctionCosts.end() && It->second > 0)
    return It->second;

  // Per-block loop-nesting weights from real loop detection.
  const_cast<Function *>(F)->numberInstructions();
  DomTree DT = computeDominators(*F);
  LoopInfo LI = LoopInfo::compute(*F, DT);
  std::vector<double> BlockWeight(F->Blocks.size(), 1.0);
  for (const auto &L : LI.loops())
    for (unsigned BlockId : L->BlockIds)
      BlockWeight[BlockId] *= LoopTripGuess;

  double Total = 0;
  for (const auto &BB : F->Blocks) {
    for (const auto &Instr : BB->Instrs) {
      double Cost = BaseOpCost;
      if (Instr->op() == Opcode::CallNative) {
        auto Hint = Opts.NativeCostHints.find(Instr->Native->Name);
        Cost = Hint != Opts.NativeCostHints.end() ? Hint->second
                                                  : Opts.DefaultNativeCost;
      } else if (Instr->op() == Opcode::Call) {
        Cost = functionCost(Instr->Callee, Depth + 1);
      }
      Total += Cost * BlockWeight[BB->Id];
    }
  }
  return Total;
}

double CostEstimator::nodeCost(const Instruction *Instr) const {
  if (Instr->op() == Opcode::CallNative) {
    auto Hint = Opts.NativeCostHints.find(Instr->Native->Name);
    return Hint != Opts.NativeCostHints.end() ? Hint->second
                                              : Opts.DefaultNativeCost;
  }
  if (Instr->op() == Opcode::Call) {
    auto It = FunctionCosts.find(Instr->Callee);
    return It != FunctionCosts.end() ? It->second : Opts.DefaultNativeCost;
  }
  return BaseOpCost;
}

//===----------------------------------------------------------------------===//
// Replicated control
//===----------------------------------------------------------------------===//

void commset::computeReplicatedNodes(const PDG &G, ParallelPlan &Plan) {
  Plan.ReplicatedNodes.clear();
  Plan.ReplicatedControl = false;
  const Loop *L = G.L;

  for (size_t I = 0; I < G.Nodes.size(); ++I)
    if (G.Nodes[I]->isTerminator())
      Plan.ReplicatedNodes.insert(static_cast<unsigned>(I));

  if (L->Induction.Local == ~0u || !L->Induction.Update)
    return;
  unsigned Ind = L->Induction.Local;

  // Induction SCC: the update store, its value chain, and every load of the
  // induction local (each stage keeps a private copy of the counter).
  auto addChain = [&](const Instruction *Instr, auto &&Self) -> void {
    int Idx = G.indexOf(Instr);
    if (Idx < 0 || !Plan.ReplicatedNodes.insert(Idx).second)
      return;
    for (const Operand &Op : Instr->Operands)
      if (Op.isInstr())
        Self(Op.Def, Self);
  };
  addChain(L->Induction.Update, addChain);
  for (size_t I = 0; I < G.Nodes.size(); ++I)
    if (G.Nodes[I]->op() == Opcode::LoadLocal && G.Nodes[I]->SlotId == Ind)
      Plan.ReplicatedNodes.insert(static_cast<unsigned>(I));

  // Header-condition closure: replicable when it only uses pure ops over
  // the induction local and loop-invariant locals.
  Instruction *Term = L->Header->terminator();
  if (!Term || Term->op() != Opcode::CondBr)
    return;

  std::vector<const Instruction *> Closure;
  bool Replicable = true;
  auto visit = [&](const Instruction *Instr, auto &&Self) -> void {
    if (!Replicable)
      return;
    switch (Instr->op()) {
    case Opcode::LoadLocal:
      if (Instr->SlotId != Ind && localStoredInLoop(*L, Instr->SlotId))
        Replicable = false;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::IntToFp:
    case Opcode::FpToInt:
      break;
    default:
      Replicable = false;
      return;
    }
    Closure.push_back(Instr);
    for (const Operand &Op : Instr->Operands)
      if (Op.isInstr())
        Self(Op.Def, Self);
  };
  if (Term->Operands[0].isInstr())
    visit(Term->Operands[0].Def, visit);
  else
    Closure.clear(); // Constant condition: nothing to replicate.

  if (Replicable) {
    for (const Instruction *Instr : Closure) {
      int Idx = G.indexOf(Instr);
      if (Idx >= 0)
        Plan.ReplicatedNodes.insert(static_cast<unsigned>(Idx));
    }
    Plan.ReplicatedControl = true;
  }
}

//===----------------------------------------------------------------------===//
// Synchronization engine
//===----------------------------------------------------------------------===//

void commset::attachSynchronization(ParallelPlan &Plan, const Module &M,
                                    const CommSetRegistry &Registry,
                                    const EffectAnalysis &EA) {
  Plan.MemberSync.clear();
  for (const std::string &Callee : Registry.memberCallees()) {
    MemberSyncInfo Info;
    std::set<unsigned> Ranks;
    for (const auto &Membership : Registry.membershipsOf(Callee)) {
      const auto &S = Registry.set(Membership.SetId);
      if (!S.NoSync)
        Ranks.insert(S.Rank);
    }
    Info.LockRanks.assign(Ranks.begin(), Ranks.end());

    // TM eligibility: user functions whose effects are interpreted global
    // accesses only (the STM instruments LoadGlobal/StoreGlobal).
    if (Function *F = M.findFunction(Callee)) {
      const EffectSummary &S = EA.summaryFor(F);
      Info.TmEligible = !S.World && S.ReadClasses.empty() &&
                        S.WriteClasses.empty() && !S.ArgMemRead &&
                        !S.ArgMemWrite;
    }
    Plan.MemberSync[Callee] = std::move(Info);
  }

  // Privatization selection. Candidates are members that *want* replicas —
  // every member under a Priv plan, plus members of `sync(S, priv)` sets
  // under any plan — and individually pass the add-reduction proof
  // (privEligibleSummary). The slot set must then be *closed*: a slot also
  // touched by direct loop-body accesses, or by loop calls outside the
  // candidate set, cannot be privatized (the replica and the shared global
  // would diverge mid-region), and a candidate writing a disqualified slot
  // falls back to locks — which can disqualify further slots, hence the
  // fixpoint. Natives never privatize (their effects bypass the
  // interpreter's global image).
  Plan.PrivGlobals.clear();
  bool AnyForce = false;
  for (const auto &S : Registry.sets())
    AnyForce |= S.ForcePriv;
  if (Plan.Sync != SyncMode::Priv && !AnyForce)
    return;

  std::set<std::string> Cand;
  for (const auto &[Callee, Info] : Plan.MemberSync) {
    bool Wants = Plan.Sync == SyncMode::Priv;
    for (const auto &Membership : Registry.membershipsOf(Callee))
      Wants |= Registry.set(Membership.SetId).ForcePriv;
    if (!Wants)
      continue;
    Function *F = M.findFunction(Callee);
    if (F && privEligibleSummary(EA.summaryFor(F)))
      Cand.insert(Callee);
  }

  for (;;) {
    std::set<unsigned> Slots;
    for (const std::string &Name : Cand)
      for (unsigned Slot : EA.summaryFor(M.findFunction(Name)).WriteGlobals)
        Slots.insert(Slot);

    if (Plan.L && Plan.F) {
      for (unsigned BlockId : Plan.L->BlockIds) {
        for (const auto &Instr : Plan.F->Blocks[BlockId]->Instrs) {
          if (Instr->op() == Opcode::LoadGlobal ||
              Instr->op() == Opcode::StoreGlobal) {
            Slots.erase(Instr->SlotId);
            continue;
          }
          if (!Instr->isCall())
            continue;
          const std::string &Name = Instr->op() == Opcode::Call
                                        ? Instr->Callee->Name
                                        : Instr->Native->Name;
          if (Cand.count(Name))
            continue;
          EffectSummary S = EA.instructionEffects(Instr.get());
          for (unsigned Slot : S.ReadGlobals)
            Slots.erase(Slot);
          for (unsigned Slot : S.WriteGlobals)
            Slots.erase(Slot);
        }
      }
    }

    bool Changed = false;
    for (auto It = Cand.begin(); It != Cand.end();) {
      const EffectSummary &S = EA.summaryFor(M.findFunction(*It));
      bool Covered = true;
      for (unsigned Slot : S.WriteGlobals)
        Covered &= Slots.count(Slot) != 0;
      if (Covered) {
        ++It;
      } else {
        It = Cand.erase(It);
        Changed = true;
      }
    }
    if (!Changed) {
      for (const std::string &Name : Cand) {
        Plan.MemberSync[Name].Privatized = true;
        for (unsigned Slot :
             EA.summaryFor(M.findFunction(Name)).WriteGlobals)
          Plan.PrivGlobals.insert(Slot);
      }
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Shared checks
//===----------------------------------------------------------------------===//

namespace {

/// Locals stored inside the loop whose values are read after it exits.
std::vector<unsigned> liveOutLocals(const PDG &G) {
  const Function &F = *G.F;
  const Loop &L = *G.L;
  std::set<unsigned> StoredInLoop;
  for (Instruction *Instr : G.Nodes)
    if (Instr->op() == Opcode::StoreLocal)
      StoredInLoop.insert(Instr->SlotId);
  if (StoredInLoop.empty())
    return {};

  // Blocks reachable from the loop's exit edges (not through the header).
  std::set<unsigned> AfterLoop;
  std::vector<const BasicBlock *> Worklist;
  for (unsigned BlockId : L.BlockIds)
    for (BasicBlock *Succ : F.Blocks[BlockId]->successors())
      if (!L.BlockIds.count(Succ->Id))
        Worklist.push_back(Succ);
  while (!Worklist.empty()) {
    const BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (!AfterLoop.insert(BB->Id).second)
      continue;
    for (BasicBlock *Succ : BB->successors())
      if (!L.BlockIds.count(Succ->Id))
        Worklist.push_back(Succ);
  }

  std::set<unsigned> LiveOut;
  for (unsigned BlockId : AfterLoop)
    for (const auto &Instr : F.Blocks[BlockId]->Instrs)
      if (Instr->op() == Opcode::LoadLocal &&
          StoredInLoop.count(Instr->SlotId))
        LiveOut.insert(Instr->SlotId);
  return {LiveOut.begin(), LiveOut.end()};
}

void setWhyNot(std::string *WhyNot, std::string Reason) {
  if (WhyNot)
    *WhyNot = std::move(Reason);
}

double totalLoopCost(const PDG &G, const CostEstimator &Cost) {
  double Total = 0;
  for (Instruction *Instr : G.Nodes)
    Total += Cost.nodeCost(Instr);
  return Total;
}

double lockedMemberCost(const PDG &G, const ParallelPlan &Plan,
                        const CostEstimator &Cost) {
  double Locked = 0;
  for (Instruction *Instr : G.Nodes) {
    if (!Instr->isCall())
      continue;
    const std::string &Name = Instr->op() == Opcode::Call
                                  ? Instr->Callee->Name
                                  : Instr->Native->Name;
    auto It = Plan.MemberSync.find(Name);
    if (It != Plan.MemberSync.end() && !It->second.LockRanks.empty() &&
        !It->second.Privatized)
      Locked += Cost.nodeCost(Instr);
  }
  return Locked;
}

} // namespace

//===----------------------------------------------------------------------===//
// DOALL
//===----------------------------------------------------------------------===//

std::optional<ParallelPlan>
commset::buildDoallPlan(const PDG &G, const SCCResult &Sccs, const Module &M,
                        const CommSetRegistry &Registry,
                        const EffectAnalysis &EA, const PlanOptions &Opts,
                        std::string *WhyNot) {
  const Loop *L = G.L;
  ParallelPlan Plan;
  Plan.Kind = Strategy::Doall;
  Plan.F = G.F;
  Plan.L = L;
  Plan.NumThreads = Opts.NumThreads;
  Plan.Sync = Opts.Sync;
  Plan.Sched = Opts.Sched;

  if (L->Induction.Local == ~0u) {
    setWhyNot(WhyNot, "no canonical induction variable (e.g. pointer "
                      "chasing loop)");
    return std::nullopt;
  }
  if (!L->SingleHeaderExit) {
    setWhyNot(WhyNot, "loop has side exits; only the header may exit");
    return std::nullopt;
  }
  if (!L->Induction.ExitCompare) {
    setWhyNot(WhyNot, "loop exit is not a compare on the induction "
                      "variable");
    return std::nullopt;
  }

  computeReplicatedNodes(G, Plan);
  if (!Plan.ReplicatedControl) {
    setWhyNot(WhyNot, "loop bound is not computable per thread");
    return std::nullopt;
  }

  // No remaining loop-carried dependence outside the privatized induction.
  for (const PDGEdge &E : G.Edges) {
    if (!G.edgeActive(E) || !G.edgeCarried(E))
      continue;
    if (E.Kind == DepKind::LocalFlow && E.LocalId == L->Induction.Local)
      continue;
    if (Plan.ReplicatedNodes.count(E.Src) && Plan.ReplicatedNodes.count(E.Dst))
      continue;
    setWhyNot(WhyNot,
              formatString("loop-carried dependence remains: %s -> %s",
                           printInstruction(*G.Nodes[E.Src]).c_str(),
                           printInstruction(*G.Nodes[E.Dst]).c_str()));
    return std::nullopt;
  }

  auto LiveOuts = liveOutLocals(G);
  for (unsigned Local : LiveOuts) {
    if (Local == L->Induction.Local)
      continue; // Fixed up by the executor via the trip count.
    setWhyNot(WhyNot, formatString("local '%s' is live out of the loop",
                                   G.F->Locals[Local].Name.c_str()));
    return std::nullopt;
  }

  Plan.InductionLocal = L->Induction.Local;
  Plan.InductionStep = L->Induction.Step;

  attachSynchronization(Plan, M, Registry, EA);

  CostEstimator Cost(M, Opts);
  double Total = totalLoopCost(G, Cost);
  double Locked = lockedMemberCost(G, Plan, Cost);
  double SerialFraction = Total > 0 ? Locked / Total : 0.0;
  Plan.EstimatedSpeedup =
      1.0 / (SerialFraction + (1.0 - SerialFraction) / Opts.NumThreads);
  return Plan;
}

//===----------------------------------------------------------------------===//
// DSWP / PS-DSWP
//===----------------------------------------------------------------------===//

std::optional<ParallelPlan>
commset::buildPipelinePlan(const PDG &G, const SCCResult &Sccs,
                           const Module &M, const CommSetRegistry &Registry,
                           const EffectAnalysis &EA, const PlanOptions &Opts,
                           bool AllowParallelStage, std::string *WhyNot) {
  ParallelPlan Plan;
  Plan.Kind = AllowParallelStage ? Strategy::PsDswp : Strategy::Dswp;
  Plan.F = G.F;
  Plan.L = G.L;
  Plan.Sync = Opts.Sync;
  Plan.Sched = Opts.Sched;
  computeReplicatedNodes(G, Plan);

  if (Plan.L->Induction.Local != ~0u) {
    Plan.InductionLocal = Plan.L->Induction.Local;
    Plan.InductionStep = Plan.L->Induction.Step;
  }

  // Pipeline live-out merging takes final local values from a sequential
  // stage thread; locals other than the privatized induction variable must
  // not escape the loop.
  for (unsigned Local : liveOutLocals(G)) {
    if (Local == Plan.L->Induction.Local)
      continue;
    setWhyNot(WhyNot, formatString("local '%s' is live out of the loop",
                                   G.F->Locals[Local].Name.c_str()));
    return std::nullopt;
  }

  CostEstimator Cost(M, Opts);

  // --- Scheduling units: SCCs coarsened so every sub-loop of the target
  // loop schedules as one piece. Splitting an inner loop across stages
  // would forward values and branch conditions once per *inner* iteration,
  // drowning the pipeline in queue traffic; the paper's schedules always
  // move whole inner computations between stages.
  unsigned NumSccs = Sccs.numComponents();
  std::vector<unsigned> UnitOf(NumSccs);
  for (unsigned I = 0; I < NumSccs; ++I)
    UnitOf[I] = I;

  DomTree UnitDT = computeDominators(*G.F);
  LoopInfo UnitLI = LoopInfo::compute(*G.F, UnitDT);
  // Inner-loop nodes execute once per inner iteration: weight their cost
  // by the trip-count guess per extra nesting level (what run-time
  // profiling gives the paper's compiler).
  auto nodeWeight = [&](const Instruction *Instr) {
    double Weight = 1.0;
    for (const Loop *Inner = UnitLI.loopFor(Instr->Parent);
         Inner && Inner->Header->Id != G.L->Header->Id;
         Inner = Inner->Parent)
      Weight *= 16.0;
    return Weight;
  };

  {
    LoopInfo &LI = UnitLI;
    // Map each SCC to the direct child loop of the target containing all
    // of its nodes (if any), then union SCCs sharing that child.
    std::map<const Loop *, unsigned> Leader;
    for (unsigned SccId = 0; SccId < NumSccs; ++SccId) {
      const Loop *Child = nullptr;
      bool Uniform = true;
      for (unsigned Node : Sccs.Components[SccId]) {
        const Loop *Innermost = LI.loopFor(G.Nodes[Node]->Parent);
        // Ascend to the direct child of the target loop (this LoopInfo is
        // freshly computed, so match loops by header block).
        while (Innermost && Innermost->Parent &&
               Innermost->Parent->Header->Id != G.L->Header->Id)
          Innermost = Innermost->Parent;
        if (!Innermost || !Innermost->Parent ||
            Innermost->Header->Id == G.L->Header->Id) {
          Uniform = false;
          break;
        }
        if (!Child)
          Child = Innermost;
        else if (Child != Innermost)
          Uniform = false;
      }
      if (!Uniform || !Child)
        continue;
      auto [It, Inserted] = Leader.try_emplace(Child, SccId);
      if (!Inserted)
        UnitOf[SccId] = UnitOf[It->second];
    }
  }

  // Collapse any cycles the coarsening created in the unit graph.
  {
    std::map<unsigned, std::set<unsigned>> UnitSuccs;
    for (unsigned SccId = 0; SccId < NumSccs; ++SccId)
      for (unsigned Succ : Sccs.DagSuccs[SccId])
        if (UnitOf[SccId] != UnitOf[Succ])
          UnitSuccs[UnitOf[SccId]].insert(UnitOf[Succ]);
    // Iterative cycle collapsing: find a cycle with DFS, merge it, retry.
    bool Merged = true;
    while (Merged) {
      Merged = false;
      std::map<unsigned, int> Color; // 0 white, 1 grey, 2 black.
      std::vector<unsigned> Path;
      std::function<bool(unsigned)> Dfs = [&](unsigned U) {
        Color[U] = 1;
        Path.push_back(U);
        for (unsigned V : UnitSuccs[U]) {
          unsigned RV = UnitOf[V];
          if (RV == U)
            continue;
          if (Color[RV] == 1) {
            // Merge the cycle suffix into RV.
            for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
              if (*It == RV)
                break;
              for (unsigned &Slot : UnitOf)
                if (Slot == *It)
                  Slot = RV;
            }
            return true;
          }
          if (Color[RV] == 0 && Dfs(RV))
            return true;
        }
        Color[U] = 2;
        Path.pop_back();
        return false;
      };
      std::set<unsigned> Roots;
      for (unsigned SccId = 0; SccId < NumSccs; ++SccId)
        Roots.insert(UnitOf[SccId]);
      for (unsigned Root : Roots) {
        Color.clear();
        Path.clear();
        if (Dfs(Root)) {
          Merged = true;
          // Rebuild successor map under the new unit ids.
          UnitSuccs.clear();
          for (unsigned SccId = 0; SccId < NumSccs; ++SccId)
            for (unsigned Succ : Sccs.DagSuccs[SccId])
              if (UnitOf[SccId] != UnitOf[Succ])
                UnitSuccs[UnitOf[SccId]].insert(UnitOf[Succ]);
          break;
        }
      }
    }
  }

  // Materialize units in topological order (min SCC topo position).
  struct SccInfo {
    unsigned Id;
    std::vector<unsigned> OwnedNodes;
    double Cost = 0;
    bool Carried = false;
  };
  std::vector<unsigned> TopoPos(NumSccs);
  for (unsigned I = 0; I < Sccs.TopoOrder.size(); ++I)
    TopoPos[Sccs.TopoOrder[I]] = I;
  std::map<unsigned, SccInfo> UnitMap; // Keyed by min topo position.
  for (unsigned SccId = 0; SccId < NumSccs; ++SccId) {
    unsigned Unit = UnitOf[SccId];
    unsigned Key = TopoPos[Unit];
    for (unsigned Other = 0; Other < NumSccs; ++Other)
      if (UnitOf[Other] == Unit)
        Key = std::min(Key, TopoPos[Other]);
    SccInfo &Info = UnitMap[Key];
    Info.Id = Unit;
    for (unsigned Node : Sccs.Components[SccId]) {
      if (Plan.ReplicatedNodes.count(Node))
        continue;
      Info.OwnedNodes.push_back(Node);
      Info.Cost += Cost.nodeCost(G.Nodes[Node]) * nodeWeight(G.Nodes[Node]);
    }
    Info.Carried |= Sccs.HasCarried[SccId] != 0;
  }
  std::vector<SccInfo> Seq;
  for (auto &[Key, Info] : UnitMap)
    if (!Info.OwnedNodes.empty())
      Seq.push_back(std::move(Info));
  if (Seq.empty()) {
    setWhyNot(WhyNot, "loop body is empty after control replication");
    return std::nullopt;
  }

  // Cross-SCC carried edges (still-active carried constraints between
  // different SCCs): both endpoints must not land in one parallel stage.
  std::vector<std::pair<unsigned, unsigned>> CrossCarried;
  for (const PDGEdge &E : G.Edges) {
    if (!G.edgeActive(E) || !G.edgeCarried(E))
      continue;
    if (Plan.InductionLocal != ~0u && E.Kind == DepKind::LocalFlow &&
        E.LocalId == Plan.InductionLocal)
      continue; // Privatized.
    unsigned SrcU = UnitOf[Sccs.ComponentOf[E.Src]];
    unsigned DstU = UnitOf[Sccs.ComponentOf[E.Dst]];
    if (SrcU != DstU)
      CrossCarried.push_back({SrcU, DstU});
    else {
      // A carried edge folded inside one coarsened unit makes that unit
      // sequential.
      for (SccInfo &Info : Seq)
        if (Info.Id == SrcU)
          Info.Carried = true;
    }
  }

  if (getenv("COMMSET_DEBUG_PLANNER")) {
    fprintf(stderr, "pipeline units for %s (%s):\n", G.F->Name.c_str(),
            AllowParallelStage ? "PS-DSWP" : "DSWP");
    for (const SccInfo &Info : Seq) {
      fprintf(stderr, "  unit %u cost=%.0f carried=%d:", Info.Id, Info.Cost,
              (int)Info.Carried);
      for (unsigned Node : Info.OwnedNodes)
        if (G.Nodes[Node]->isCall())
          fprintf(stderr, " %s",
                  G.Nodes[Node]->op() == Opcode::Call
                      ? G.Nodes[Node]->Callee->Name.c_str()
                      : G.Nodes[Node]->Native->Name.c_str());
      fprintf(stderr, "\n");
    }
    for (auto [A, B] : CrossCarried)
      fprintf(stderr, "  crosscarried %u -> %u\n", A, B);
  }

  std::vector<std::pair<size_t, size_t>> StageRanges; // [first, last).
  int ParallelStage = -1;

  // SCCs excluded from a parallel stage: internal carried deps, incidence
  // to a cross-SCC carried edge (a replica would observe stale forwarded
  // state), or header-block nodes (the header is traced by every replica
  // every iteration, so its owner must execute every iteration).
  std::set<unsigned> CarriedIncident;
  for (auto [A, B] : CrossCarried) {
    CarriedIncident.insert(A);
    CarriedIncident.insert(B);
  }
  double TotalCost = 0;
  for (const SccInfo &Info : Seq)
    TotalCost += Info.Cost;

  // A member call needing compiler-inserted synchronization.
  auto isLockedMemberCall = [&](const Instruction *Instr) {
    if (!Instr->isCall())
      return false;
    const std::string &Name = Instr->op() == Opcode::Call
                                  ? Instr->Callee->Name
                                  : Instr->Native->Name;
    for (const auto &Membership : Registry.membershipsOf(Name))
      if (!Registry.set(Membership.SetId).NoSync)
        return true;
    return false;
  };

  for (SccInfo &Info : Seq) {
    if (CarriedIncident.count(Info.Id))
      Info.Carried = true;
    for (unsigned Node : Info.OwnedNodes) {
      if (G.Nodes[Node]->Parent == G.L->Header)
        Info.Carried = true;
      if (G.Nodes[Node]->op() == Opcode::Ret) {
        setWhyNot(WhyNot, "loop contains a return");
        return std::nullopt;
      }
    }
    // Partitioning heuristic matching the paper's schedules: a cheap,
    // synchronized member (RNG seed update, packet dequeue, console print)
    // runs better in a sequential stage, off the critical path, than
    // replicated behind a contended lock (paper §5.1, §5.7).
    if (!Info.Carried && Info.Cost < 0.25 * TotalCost) {
      bool HasLockedMember = false;
      bool OnlyCheapNodes = true;
      for (unsigned Node : Info.OwnedNodes) {
        if (isLockedMemberCall(G.Nodes[Node]))
          HasLockedMember = true;
        else if (G.Nodes[Node]->isCall())
          OnlyCheapNodes = false;
      }
      if (HasLockedMember && OnlyCheapNodes)
        Info.Carried = true; // Keep out of the parallel window.
    }
  }

  if (AllowParallelStage) {
    // Find the best contiguous run of carried-free SCCs with no internal
    // cross-carried pair.
    double BestCost = 0;
    size_t BestStart = 0, BestEnd = 0;
    size_t Start = 0;
    while (Start < Seq.size()) {
      if (Seq[Start].Carried) {
        ++Start;
        continue;
      }
      size_t End = Start;
      double RunCost = 0;
      std::set<unsigned> InRun;
      while (End < Seq.size() && !Seq[End].Carried) {
        bool Violates = false;
        for (auto [A, B] : CrossCarried)
          if ((InRun.count(A) && B == Seq[End].Id) ||
              (InRun.count(B) && A == Seq[End].Id) ||
              (A == Seq[End].Id && B == Seq[End].Id))
            Violates = true;
        if (Violates)
          break;
        InRun.insert(Seq[End].Id);
        RunCost += Seq[End].Cost;
        ++End;
      }
      if (RunCost > BestCost) {
        BestCost = RunCost;
        BestStart = Start;
        BestEnd = End;
      }
      Start = End > Start ? End : Start + 1;
    }
    if (BestEnd == BestStart) {
      setWhyNot(WhyNot, "no replicable (carried-free) stage found");
      return std::nullopt;
    }
    if (BestStart > 0)
      StageRanges.push_back({0, BestStart});
    ParallelStage = static_cast<int>(StageRanges.size());
    StageRanges.push_back({BestStart, BestEnd});
    if (BestEnd < Seq.size())
      StageRanges.push_back({BestEnd, Seq.size()});
  } else {
    // DSWP: balanced contiguous partition into k sequential stages.
    unsigned K = std::min<unsigned>(
        {Opts.MaxStages, Opts.NumThreads,
         static_cast<unsigned>(Seq.size())});
    if (K < 2) {
      setWhyNot(WhyNot, "cannot form at least two pipeline stages");
      return std::nullopt;
    }
    double Total = 0;
    for (const SccInfo &Info : Seq)
      Total += Info.Cost;
    double Target = Total / K;
    size_t Pos = 0;
    for (unsigned StageIdx = 0; StageIdx < K && Pos < Seq.size();
         ++StageIdx) {
      size_t First = Pos;
      double Acc = 0;
      size_t Remaining = Seq.size() - Pos;
      unsigned StagesLeft = K - StageIdx;
      while (Pos < Seq.size() && (Acc < Target || Pos == First) &&
             Remaining > StagesLeft - 1) {
        Acc += Seq[Pos].Cost;
        ++Pos;
        Remaining = Seq.size() - Pos;
      }
      StageRanges.push_back({First, Pos});
    }
    if (Pos < Seq.size())
      StageRanges.back().second = Seq.size();
  }

  if (StageRanges.size() < 2 && ParallelStage < 0) {
    setWhyNot(WhyNot, "pipeline collapsed to a single sequential stage");
    return std::nullopt;
  }

  // Materialize stages. A pipeline needs at least one thread per stage.
  if (StageRanges.size() > Opts.NumThreads) {
    setWhyNot(WhyNot,
              formatString("pipeline needs %zu stages but only %u threads "
                           "are available",
                           StageRanges.size(), Opts.NumThreads));
    return std::nullopt;
  }
  unsigned SeqStages = 0;
  for (size_t I = 0; I < StageRanges.size(); ++I)
    SeqStages += (static_cast<int>(I) != ParallelStage);
  unsigned Replicas =
      ParallelStage >= 0 && Opts.NumThreads > SeqStages
          ? Opts.NumThreads - SeqStages
          : 1;

  for (size_t I = 0; I < StageRanges.size(); ++I) {
    StagePlan Stage;
    Stage.Parallel = static_cast<int>(I) == ParallelStage;
    Stage.Replicas = Stage.Parallel ? Replicas : 1;
    for (size_t Pos = StageRanges[I].first; Pos < StageRanges[I].second;
         ++Pos) {
      Stage.CostEstimate += Seq[Pos].Cost;
      for (unsigned Node : Seq[Pos].OwnedNodes)
        Stage.OwnedNodes.insert(Node);
    }
    Plan.Stages.push_back(std::move(Stage));
  }
  if (ParallelStage >= 0 && Replicas < 2 && Plan.Stages.size() < 2) {
    setWhyNot(WhyNot, "not enough threads to replicate the parallel stage");
    return std::nullopt;
  }

  Plan.NumThreads = 0;
  for (const StagePlan &Stage : Plan.Stages)
    Plan.NumThreads += Stage.Replicas;

  // Cross-stage memory-dependence tokens: for every active memory edge
  // whose endpoints land in different stages, the destination's stage pops
  // a token at the source node's trace position.
  std::vector<int> OwnerStage(G.Nodes.size(), -1);
  for (size_t S = 0; S < Plan.Stages.size(); ++S)
    for (unsigned Node : Plan.Stages[S].OwnedNodes)
      OwnerStage[Node] = static_cast<int>(S);
  Plan.MemTokenStages.assign(G.Nodes.size(), 0);
  Plan.StoreReceiverStages.assign(G.Nodes.size(), 0);
  for (const PDGEdge &E : G.Edges) {
    if (E.Kind == DepKind::LocalFlow && G.edgeActive(E)) {
      int SrcStage = OwnerStage[E.Src];
      int DstStage = OwnerStage[E.Dst];
      if (SrcStage >= 0 && DstStage >= 0 && SrcStage != DstStage)
        Plan.StoreReceiverStages[E.Src] |= uint64_t(1) << DstStage;
      continue;
    }
    if (E.Kind != DepKind::Memory || !G.edgeActive(E))
      continue;
    int SrcStage = OwnerStage[E.Src];
    int DstStage = OwnerStage[E.Dst];
    if (SrcStage < 0 || DstStage < 0 || SrcStage == DstStage)
      continue;
    Plan.MemTokenStages[E.Src] |= uint64_t(1) << DstStage;
    if (getenv("COMMSET_DEBUG_PLANNER"))
      fprintf(stderr, "  memtoken stage%d -> stage%d: %s -> %s%s\n",
              SrcStage, DstStage,
              printInstruction(*G.Nodes[E.Src]).c_str(),
              printInstruction(*G.Nodes[E.Dst]).c_str(),
              E.LoopCarried ? " (carried)" : "");
  }

  attachSynchronization(Plan, M, Registry, EA);

  // Estimate: pipeline throughput is bounded by the slowest stage.
  double Total = 0, Bottleneck = 0;
  for (const StagePlan &Stage : Plan.Stages) {
    Total += Stage.CostEstimate;
    Bottleneck =
        std::max(Bottleneck, Stage.CostEstimate / Stage.Replicas);
  }
  Plan.EstimatedSpeedup =
      Bottleneck > 0 ? std::min<double>(Total / Bottleneck, Opts.NumThreads)
                     : 1.0;
  return Plan;
}
