//===- BenchHarness.cpp ---------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Workloads/BenchHarness.h"

#include "commset/Support/StringUtils.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace commset;
using namespace commset::bench;

FigureRunner::FigureRunner(const std::string &WorkloadName, int Scale)
    : Name(WorkloadName), Scale(Scale), W(makeWorkload(WorkloadName)) {
  if (W && Scale == 0)
    this->Scale = W->defaultScale();
}

FigureRunner::VariantState *
FigureRunner::variant(const std::string &Variant) {
  auto It = Variants.find(Variant);
  if (It != Variants.end())
    return It->second.get();

  auto V = std::make_unique<VariantState>();
  DiagnosticEngine Diags;
  V->C = Compilation::fromSource(W->source(Variant), Diags);
  if (V->C)
    V->T = V->C->analyzeLoop(W->entry(), Diags);
  auto *Raw = V.get();
  Variants[Variant] = std::move(V);
  return Raw;
}

uint64_t FigureRunner::seqBaseline(VariantState &V) {
  if (V.SeqVirtualNs)
    return V.SeqVirtualNs;
  NativeRegistry Natives;
  W->reset();
  W->registerNatives(Natives);
  RunConfig Config;
  Config.Simulate = true;
  RunOutcome Out =
      runScheme(*V.C, V.T->F, W->args(Scale), Natives, Config);
  V.SeqVirtualNs = Out.VirtualNs;
  return V.SeqVirtualNs;
}

Measurement FigureRunner::measure(const Series &S, unsigned Threads) {
  Measurement M;
  VariantState *V = variant(S.Variant);
  if (!V || !V->C || !V->T) {
    M.WhyNot = "variant failed to compile";
    return M;
  }
  M.SeqVirtualNs = seqBaseline(*V);

  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = S.Sync;
  for (auto &[K, C] : W->costHints())
    Opts.NativeCostHints[K] = C;
  auto Schemes = buildAllSchemes(*V->C, *V->T, Opts);
  const SchemeReport *Chosen = nullptr;
  for (const SchemeReport &R : Schemes)
    if (R.Kind == S.Kind)
      Chosen = &R;
  if (!Chosen || !Chosen->Applicable) {
    M.WhyNot = Chosen ? Chosen->WhyNot : "unknown scheme";
    return M;
  }

  NativeRegistry Natives;
  W->reset();
  W->registerNatives(Natives);
  RunConfig Config;
  Config.Plan = &*Chosen->Plan;
  Config.Simulate = true;
  RunOutcome Out =
      runScheme(*V->C, V->T->F, W->args(Scale), Natives, Config);
  M.Applicable = true;
  M.VirtualNs = Out.VirtualNs;
  M.Speedup = Out.VirtualNs
                  ? static_cast<double>(M.SeqVirtualNs) / Out.VirtualNs
                  : 0.0;
  M.Schedule = Chosen->Plan->describe();
  return M;
}

Measurement FigureRunner::measureBest(const std::string &Variant,
                                      SyncMode Sync, unsigned Threads,
                                      std::string *SchemeName) {
  Measurement Best;
  for (Strategy Kind :
       {Strategy::Doall, Strategy::PsDswp, Strategy::Dswp}) {
    Series S{"", Variant, Kind, Sync};
    Measurement M = measure(S, Threads);
    if (M.Applicable && M.Speedup > Best.Speedup) {
      Best = M;
      if (SchemeName)
        *SchemeName = strategyName(Kind);
    }
  }
  if (!Best.Applicable) {
    Best.Speedup = 1.0; // Sequential fallback.
    if (SchemeName)
      *SchemeName = "Sequential";
  }
  return Best;
}

unsigned FigureRunner::annotationCount() const {
  unsigned Count = 0;
  for (const std::string &Line : splitString(W->source(""), '\n'))
    if (Line.find("#pragma commset") != std::string::npos &&
        Line.find("effects") == std::string::npos)
      ++Count;
  return Count;
}

unsigned FigureRunner::sourceLines() const {
  unsigned Count = 0;
  for (const std::string &Line : splitString(W->source(""), '\n'))
    if (!trimString(Line).empty())
      ++Count;
  return Count;
}

namespace {

void appendJsonString(std::ostringstream &Os, const std::string &S) {
  Os << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Os << "\\\"";
      break;
    case '\\':
      Os << "\\\\";
      break;
    case '\n':
      Os << "\\n";
      break;
    default:
      Os << C;
    }
  }
  Os << '"';
}

} // namespace

#ifndef COMMSET_GIT_DESCRIBE
#define COMMSET_GIT_DESCRIBE "unknown"
#endif

const char *commset::bench::benchGitDescribe() {
  return COMMSET_GIT_DESCRIBE;
}

std::string
commset::bench::benchRecordsJson(const std::vector<BenchRecord> &Records) {
  std::ostringstream Os;
  Os << "[\n";
  for (size_t I = 0; I < Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    Os << "  {\"schema_version\": " << BenchJsonSchemaVersion
       << ", \"git_describe\": ";
    appendJsonString(Os, benchGitDescribe());
    Os << ", \"workload\": ";
    appendJsonString(Os, R.Workload);
    Os << ", \"label\": ";
    appendJsonString(Os, R.Label);
    Os << ", \"variant\": ";
    appendJsonString(Os, R.Variant);
    Os << ", \"scheme\": ";
    appendJsonString(Os, R.Scheme);
    Os << ", \"sync\": ";
    appendJsonString(Os, R.Sync);
    Os << ", \"threads\": " << R.Threads
       << ", \"applicable\": " << (R.Applicable ? "true" : "false");
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", R.Speedup);
    Os << ", \"speedup\": " << Buf << ", \"virtual_ns\": " << R.VirtualNs
       << ", \"seq_virtual_ns\": " << R.SeqVirtualNs;
    for (const auto &[K, V] : R.Extra) {
      Os << ", ";
      appendJsonString(Os, K);
      std::snprintf(Buf, sizeof(Buf), "%.6g", V);
      Os << ": " << Buf;
    }
    Os << "}" << (I + 1 < Records.size() ? ",\n" : "\n");
  }
  Os << "]\n";
  return Os.str();
}

bool commset::bench::writeBenchJson(const std::string &Path,
                                    const std::vector<BenchRecord> &Records,
                                    std::string *Error) {
  std::ofstream Out(Path);
  if (!Out) {
    if (Error)
      *Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << benchRecordsJson(Records);
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to " + Path + " failed";
    return false;
  }
  return true;
}

double commset::bench::printFigure(const std::string &WorkloadName,
                                   const std::vector<Series> &SeriesList,
                                   const std::vector<unsigned> &Threads,
                                   int Scale,
                                   std::vector<BenchRecord> *Records) {
  FigureRunner Runner(WorkloadName, Scale);
  printf("\n=== %s: simulated speedup over sequential ===\n",
         WorkloadName.c_str());
  printf("%-28s", "scheme \\ threads");
  for (unsigned T : Threads)
    printf("%8u", T);
  printf("\n");

  double BestAtMax = 0.0;
  for (const Series &S : SeriesList) {
    printf("%-28s", S.Label.c_str());
    for (unsigned T : Threads) {
      Measurement M = Runner.measure(S, T);
      if (!M.Applicable)
        printf("%8s", "n/a");
      else
        printf("%8.2f", M.Speedup);
      if (M.Applicable && T == Threads.back())
        BestAtMax = std::max(BestAtMax, M.Speedup);
      if (Records) {
        BenchRecord R;
        R.Workload = WorkloadName;
        R.Label = S.Label;
        R.Variant = S.Variant;
        R.Scheme = strategyName(S.Kind);
        R.Sync = syncModeName(S.Sync);
        R.Threads = T;
        R.Applicable = M.Applicable;
        R.Speedup = M.Speedup;
        R.VirtualNs = M.VirtualNs;
        R.SeqVirtualNs = M.SeqVirtualNs;
        Records->push_back(std::move(R));
      }
    }
    printf("\n");
  }
  fflush(stdout);
  return BestAtMax;
}
