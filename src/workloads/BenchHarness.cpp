//===- BenchHarness.cpp ---------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Workloads/BenchHarness.h"

#include "commset/Support/StringUtils.h"

#include <cstdio>

using namespace commset;
using namespace commset::bench;

FigureRunner::FigureRunner(const std::string &WorkloadName, int Scale)
    : Name(WorkloadName), Scale(Scale), W(makeWorkload(WorkloadName)) {
  if (W && Scale == 0)
    this->Scale = W->defaultScale();
}

FigureRunner::VariantState *
FigureRunner::variant(const std::string &Variant) {
  auto It = Variants.find(Variant);
  if (It != Variants.end())
    return It->second.get();

  auto V = std::make_unique<VariantState>();
  DiagnosticEngine Diags;
  V->C = Compilation::fromSource(W->source(Variant), Diags);
  if (V->C)
    V->T = V->C->analyzeLoop(W->entry(), Diags);
  auto *Raw = V.get();
  Variants[Variant] = std::move(V);
  return Raw;
}

uint64_t FigureRunner::seqBaseline(VariantState &V) {
  if (V.SeqVirtualNs)
    return V.SeqVirtualNs;
  NativeRegistry Natives;
  W->reset();
  W->registerNatives(Natives);
  RunConfig Config;
  Config.Simulate = true;
  RunOutcome Out =
      runScheme(*V.C, V.T->F, W->args(Scale), Natives, Config);
  V.SeqVirtualNs = Out.VirtualNs;
  return V.SeqVirtualNs;
}

Measurement FigureRunner::measure(const Series &S, unsigned Threads) {
  Measurement M;
  VariantState *V = variant(S.Variant);
  if (!V || !V->C || !V->T) {
    M.WhyNot = "variant failed to compile";
    return M;
  }
  M.SeqVirtualNs = seqBaseline(*V);

  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = S.Sync;
  for (auto &[K, C] : W->costHints())
    Opts.NativeCostHints[K] = C;
  auto Schemes = buildAllSchemes(*V->C, *V->T, Opts);
  const SchemeReport *Chosen = nullptr;
  for (const SchemeReport &R : Schemes)
    if (R.Kind == S.Kind)
      Chosen = &R;
  if (!Chosen || !Chosen->Applicable) {
    M.WhyNot = Chosen ? Chosen->WhyNot : "unknown scheme";
    return M;
  }

  NativeRegistry Natives;
  W->reset();
  W->registerNatives(Natives);
  RunConfig Config;
  Config.Plan = &*Chosen->Plan;
  Config.Simulate = true;
  RunOutcome Out =
      runScheme(*V->C, V->T->F, W->args(Scale), Natives, Config);
  M.Applicable = true;
  M.VirtualNs = Out.VirtualNs;
  M.Speedup = Out.VirtualNs
                  ? static_cast<double>(M.SeqVirtualNs) / Out.VirtualNs
                  : 0.0;
  M.Schedule = Chosen->Plan->describe();
  return M;
}

Measurement FigureRunner::measureBest(const std::string &Variant,
                                      SyncMode Sync, unsigned Threads,
                                      std::string *SchemeName) {
  Measurement Best;
  for (Strategy Kind :
       {Strategy::Doall, Strategy::PsDswp, Strategy::Dswp}) {
    Series S{"", Variant, Kind, Sync};
    Measurement M = measure(S, Threads);
    if (M.Applicable && M.Speedup > Best.Speedup) {
      Best = M;
      if (SchemeName)
        *SchemeName = strategyName(Kind);
    }
  }
  if (!Best.Applicable) {
    Best.Speedup = 1.0; // Sequential fallback.
    if (SchemeName)
      *SchemeName = "Sequential";
  }
  return Best;
}

unsigned FigureRunner::annotationCount() const {
  unsigned Count = 0;
  for (const std::string &Line : splitString(W->source(""), '\n'))
    if (Line.find("#pragma commset") != std::string::npos &&
        Line.find("effects") == std::string::npos)
      ++Count;
  return Count;
}

unsigned FigureRunner::sourceLines() const {
  unsigned Count = 0;
  for (const std::string &Line : splitString(W->source(""), '\n'))
    if (!trimString(Line).empty())
      ++Count;
  return Count;
}

double commset::bench::printFigure(const std::string &WorkloadName,
                                   const std::vector<Series> &SeriesList,
                                   const std::vector<unsigned> &Threads,
                                   int Scale) {
  FigureRunner Runner(WorkloadName, Scale);
  printf("\n=== %s: simulated speedup over sequential ===\n",
         WorkloadName.c_str());
  printf("%-28s", "scheme \\ threads");
  for (unsigned T : Threads)
    printf("%8u", T);
  printf("\n");

  double BestAtMax = 0.0;
  for (const Series &S : SeriesList) {
    printf("%-28s", S.Label.c_str());
    for (unsigned T : Threads) {
      Measurement M = Runner.measure(S, T);
      if (!M.Applicable)
        printf("%8s", "n/a");
      else
        printf("%8.2f", M.Speedup);
      if (M.Applicable && T == Threads.back())
        BestAtMax = std::max(BestAtMax, M.Speedup);
    }
    printf("\n");
  }
  fflush(stdout);
  return BestAtMax;
}
