//===- EclatWorkload.cpp - Figure 6d program ------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// ECLAT (paper §5.3): association-rule mining over a vertical database.
// Per iteration: read a candidate's tidlist from the database (mutates
// shared descriptors -> SELF), intersect tidlists (heavy, private),
// insert into the output list out of order (SELF, set semantics), and
// update the Stats class (an unpredicated Group COMMSET + SELF).
// Paper results: DOALL+Mutex 7.5x (compute dominates the critical
// sections); without the COMMSET on the database read, DSWP's DAG-SCC
// collapses and yields little.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <atomic>
#include <mutex>

using namespace commset;

namespace {

const char *EclatSource = R"(
#pragma commset decl(STATS)
#pragma commset member(SELF)
extern ptr db_read(int i);
#pragma commset effects(db_read, malloc, reads(db), writes(db))
extern int tid_intersect(ptr t, int i);
#pragma commset effects(tid_intersect, argmem)
#pragma commset member(SELF)
extern void list_insert(int i, int sup);
#pragma commset effects(list_insert, reads(lists), writes(lists))
#pragma commset member(SELF, STATS)
extern void stats_count(int sup);
#pragma commset effects(stats_count, reads(stats), writes(stats))
#pragma commset member(SELF, STATS)
extern void stats_sum(int sup);
#pragma commset effects(stats_sum, reads(stats), writes(stats))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    ptr t = db_read(i);
    int sup = tid_intersect(t, i);
    list_insert(i, sup);
    stats_count(sup);
    stats_sum(sup);
  }
}
)";

class EclatWorkload : public Workload {
public:
  EclatWorkload() {
    // Vertical database: 128 items, each with a 2048-bit tid bitmap.
    Lcg Rng(0xEC1A7);
    Tidlists.resize(128);
    for (auto &Tids : Tidlists) {
      Tids.resize(2048 / 64);
      for (auto &Word : Tids)
        Word = Rng.next() & Rng.next(); // ~25% density.
    }
  }

  const char *name() const override { return "eclat"; }

  std::string source(const std::string &Variant) const override {
    if (Variant == "plain")
      return stripCommsetAnnotations(EclatSource);
    return EclatSource;
  }

  int defaultScale() const override { return 256; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "db_read",
        [this](const RtValue *Args, unsigned) {
          // Copies the candidate pair's first tidlist; the shared cursor
          // models the mutated file descriptor state.
          std::lock_guard<std::mutex> Guard(M);
          ++DbCursor;
          size_t Item = static_cast<size_t>(Args[0].I) % Tidlists.size();
          Buffers.push_back(
              std::make_unique<std::vector<uint64_t>>(Tidlists[Item]));
          return RtValue::ofPtr(Buffers.back()->data());
        },
        1400, "db");
    Natives.add(
        "tid_intersect",
        [this](const RtValue *Args, unsigned) {
          auto *Tids = static_cast<const uint64_t *>(Args[0].P);
          size_t Other =
              static_cast<size_t>(Args[1].I * 31 + 7) % Tidlists.size();
          const auto &B = Tidlists[Other];
          int64_t Count = 0;
          // Repeated intersection models candidate-pair expansion.
          for (int Round = 0; Round < 16; ++Round)
            for (size_t W = 0; W < B.size(); ++W)
              Count += __builtin_popcountll(Tids[W] & (B[W] + Round));
          return RtValue::ofInt(Count);
        },
        42000);
    Natives.add(
        "list_insert",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Itemsets.push_back({Args[0].I, Args[1].I});
          return RtValue();
        },
        800);
    Natives.add(
        "stats_count",
        [this](const RtValue *, unsigned) {
          Count.fetch_add(1, std::memory_order_relaxed);
          return RtValue();
        },
        250);
    Natives.add(
        "stats_sum",
        [this](const RtValue *Args, unsigned) {
          Sum.fetch_add(Args[0].I, std::memory_order_relaxed);
          return RtValue();
        },
        250);
  }

  std::map<std::string, double> costHints() const override {
    return {{"db_read", 1400},
            {"tid_intersect", 42000},
            {"list_insert", 800},
            {"stats_count", 250},
            {"stats_sum", 250}};
  }

  uint64_t checksum() const override {
    uint64_t Check = static_cast<uint64_t>(Sum.load()) * 31 +
                     static_cast<uint64_t>(Count.load());
    for (auto [I, S] : Itemsets)
      Check += static_cast<uint64_t>(I + 11) * 2654435761u ^
               static_cast<uint64_t>(S);
    return Check;
  }

  void reset() override {
    Itemsets.clear();
    Buffers.clear();
    Count.store(0);
    Sum.store(0);
    DbCursor = 0;
  }

private:
  std::vector<std::vector<uint64_t>> Tidlists;
  std::mutex M;
  unsigned DbCursor = 0;
  std::vector<std::pair<int64_t, int64_t>> Itemsets;
  std::vector<std::unique_ptr<std::vector<uint64_t>>> Buffers;
  std::atomic<int64_t> Count{0};
  std::atomic<int64_t> Sum{0};
};

} // namespace

std::unique_ptr<Workload> commset::makeEclatWorkload() {
  return std::make_unique<EclatWorkload>();
}
