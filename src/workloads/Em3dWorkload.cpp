//===- Em3dWorkload.cpp - Figure 6e program -------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// em3d (paper §5.4): bipartite-graph construction for electromagnetic wave
// propagation. The outer loop walks a linked list of nodes (pointer
// chasing: no canonical induction variable, so DOALL is inapplicable); the
// inner loop draws random neighbors from a shared-seed RNG library. The
// RNG routines form a Group COMMSET plus their own SELF sets — the paper's
// point about linear (8 annotations) vs quadratic (16 pairwise)
// specification. Paper results: PS-DSWP 5.9x; plain DSWP only 1.2x.
//
// Modeling note: graph_next is declared malloc because the iterator hands
// out each node's handle exactly once per traversal, making per-node
// adjacency memory iteration-private (this substitutes for the shape
// analysis a production compiler would use).
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <atomic>
#include <mutex>

using namespace commset;

namespace {

const char *Em3dSource = R"(
int seed = 777;
#pragma commset decl(RSET)
#pragma commset member(SELF, RSET)
int rng_int() {
  seed = seed * 1103 + 12345;
  if (seed < 0) {
    seed = 0 - seed;
  }
  return seed;
}
#pragma commset member(SELF, RSET)
int rng_pick(int bound) {
  seed = seed * 214013 + 2531011;
  if (seed < 0) {
    seed = 0 - seed;
  }
  return seed % bound;
}
extern ptr graph_handle(int nnodes);
#pragma commset effects(graph_handle, malloc)
extern ptr graph_first(ptr g);
#pragma commset effects(graph_first, malloc, reads(graph))
extern ptr graph_next(ptr g, ptr node);
#pragma commset effects(graph_next, malloc, reads(graph))
extern ptr node_claim(ptr node);
#pragma commset effects(node_claim, malloc)
extern int node_valid(ptr node);
#pragma commset effects(node_valid, pure)
extern int node_degree(ptr node);
#pragma commset effects(node_degree, argmem)
extern void node_connect(ptr node, int j, int r);
#pragma commset effects(node_connect, argmem)
void main_loop(int nnodes) {
  ptr g = graph_handle(nnodes);
  ptr node = graph_first(g);
  int more = node_valid(node);
  while (more > 0) {
    ptr cur = node_claim(node);
    int deg = node_degree(cur);
    for (int j = 0; j < deg; j++) {
      int r = rng_pick(1024);
      int w = rng_int();
      node_connect(cur, j, r + w % 7);
    }
    node = graph_next(g, node);
    more = node_valid(node);
  }
}
)";

struct Em3dNode {
  unsigned Id = 0;
  unsigned Degree = 0;
  std::vector<int64_t> Neighbors;
  Em3dNode *Next = nullptr;
};

struct Em3dGraph {
  std::vector<std::unique_ptr<Em3dNode>> Nodes;
};

class Em3dWorkload : public Workload {
public:
  const char *name() const override { return "em3d"; }

  std::string source(const std::string &Variant) const override {
    if (Variant == "plain")
      return stripCommsetAnnotations(Em3dSource);
    return Em3dSource;
  }

  int defaultScale() const override { return 300; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "graph_handle",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          auto G = std::make_unique<Em3dGraph>();
          Lcg Rng(0xE3D);
          unsigned N = static_cast<unsigned>(Args[0].I);
          G->Nodes.resize(N);
          for (unsigned I = 0; I < N; ++I) {
            G->Nodes[I] = std::make_unique<Em3dNode>();
            G->Nodes[I]->Id = I;
            G->Nodes[I]->Degree = 8 + static_cast<unsigned>(Rng.next(8));
            if (I > 0)
              G->Nodes[I - 1]->Next = G->Nodes[I].get();
          }
          Graphs.push_back(std::move(G));
          return RtValue::ofPtr(Graphs.back().get());
        },
        2000);
    Natives.add(
        "graph_first",
        [](const RtValue *Args, unsigned) {
          auto *G = static_cast<Em3dGraph *>(Args[0].P);
          return RtValue::ofPtr(G->Nodes.empty() ? nullptr
                                                 : G->Nodes[0].get());
        },
        300);
    Natives.add(
        "graph_next",
        [](const RtValue *Args, unsigned) {
          auto *Node = static_cast<Em3dNode *>(Args[1].P);
          return RtValue::ofPtr(Node ? Node->Next : nullptr);
        },
        600);
    Natives.add(
        "node_claim",
        // The traversal hands out each node exactly once; declaring the
        // claim allocator-like makes per-node adjacency memory
        // iteration-private (substitutes for shape analysis).
        [](const RtValue *Args, unsigned) { return RtValue::ofPtr(Args[0].P); },
        80);
    Natives.add(
        "node_valid",
        [](const RtValue *Args, unsigned) {
          return RtValue::ofInt(Args[0].P != nullptr ? 1 : 0);
        },
        50);
    Natives.add(
        "node_degree",
        [](const RtValue *Args, unsigned) {
          auto *Node = static_cast<Em3dNode *>(Args[0].P);
          return RtValue::ofInt(Node->Degree);
        },
        200);
    Natives.add(
        "node_connect",
        [this](const RtValue *Args, unsigned) {
          auto *Node = static_cast<Em3dNode *>(Args[0].P);
          // Light real work plus the declared virtual cost of the field
          // initialization the paper's em3d does per neighbor.
          int64_t Slot = Args[1].I;
          int64_t R = Args[2].I;
          if (Node->Neighbors.size() <=
              static_cast<size_t>(Slot))
            Node->Neighbors.resize(Slot + 1);
          Node->Neighbors[Slot] = R;
          Connects.fetch_add(1, std::memory_order_relaxed);
          XorSum.fetch_xor(static_cast<uint64_t>(R * (Node->Id + 1)),
                           std::memory_order_relaxed);
          return RtValue();
        },
        1700);
  }

  std::map<std::string, double> costHints() const override {
    return {{"graph_handle", 2000}, {"graph_first", 300},
            {"graph_next", 600},    {"node_valid", 50},
            {"node_claim", 80},     {"node_degree", 200},
            {"node_connect", 1700}};
  }

  uint64_t checksum() const override {
    // The RNG stream is permuted under COMMSET schedules (legal per the
    // annotation), so only structural output is invariant.
    return static_cast<uint64_t>(Connects.load());
  }

  uint64_t xorSum() const { return XorSum.load(); }

  void reset() override {
    Graphs.clear();
    Connects.store(0);
    XorSum.store(0);
  }

private:
  std::mutex M;
  std::vector<std::unique_ptr<Em3dGraph>> Graphs;
  std::atomic<int64_t> Connects{0};
  std::atomic<uint64_t> XorSum{0};
};

} // namespace

std::unique_ptr<Workload> commset::makeEm3dWorkload() {
  return std::make_unique<Em3dWorkload>();
}
