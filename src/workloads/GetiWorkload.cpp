//===- GetiWorkload.cpp - Figure 6c program -------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// GETI (paper §5.2): greedy error-tolerant itemset mining. Each iteration
// builds an itemset Bitmap via SetBit/GetBit (interfaces in a COMMSET
// predicated on the key), scores its support against the transaction
// database, and pushes the itemset + a console print from a
// client-side self-commutative block. Paper results: PS-DSWP+Lib 3.6x best
// on 8 threads (console prints bound the sequential stage) with DOALL ahead
// at low thread counts — the crossover comes from lock traffic on the
// output block versus queue buffering.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <cstring>
#include <mutex>

using namespace commset;

namespace {

const char *GetiSource = R"(
#pragma commset decl(FSET)
#pragma commset predicate(FSET, (int a), (int b), a != b)
#pragma commset decl(KSET)
#pragma commset predicate(KSET, (int k1), (int k2), k1 != k2)
extern ptr bitmap_alloc(int nbits);
#pragma commset effects(bitmap_alloc, malloc)
#pragma commset member(KSET(key))
extern void set_bit(ptr bm, int key);
#pragma commset effects(set_bit, argmem)
#pragma commset member(KSET(key))
extern int get_bit(ptr bm, int key);
#pragma commset effects(get_bit, argmem)
extern int gen_item(int i, int j);
#pragma commset effects(gen_item, pure)
extern int eval_support(ptr bm, int i);
#pragma commset effects(eval_support, argmem, reads(db))
extern void emit_itemset(int i, int sup);
#pragma commset effects(emit_itemset, reads(console), writes(console))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    ptr bm = bitmap_alloc(512);
    for (int j = 0; j < 24; j++) {
      int it = gen_item(i, j);
      if (get_bit(bm, it) == 0) {
        set_bit(bm, it);
      }
    }
    int sup = eval_support(bm, i);
    #pragma commset member(SELF, FSET(i))
    {
      emit_itemset(i, sup);
    }
  }
}
)";

class GetiWorkload : public Workload {
public:
  GetiWorkload() {
    // Synthetic transaction database: 256 transactions x 512 item bits.
    Lcg Rng(0xFEEDFACE);
    Db.resize(256);
    for (auto &Txn : Db) {
      Txn.resize(512 / 64);
      for (auto &Word : Txn)
        Word = Rng.next() | (Rng.next() << 32);
    }
  }

  const char *name() const override { return "geti"; }

  std::string source(const std::string &Variant) const override {
    std::string Src = GetiSource;
    if (Variant == "noself") {
      size_t Pos = Src.rfind("member(SELF, FSET(i))");
      Src.replace(Pos, strlen("member(SELF, FSET(i))"), "member(FSET(i))");
      return Src;
    }
    if (Variant == "plain")
      return stripCommsetAnnotations(Src);
    return Src;
  }

  int defaultScale() const override { return 256; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "bitmap_alloc",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Bitmaps.push_back(std::make_unique<std::vector<uint64_t>>(
              static_cast<size_t>(Args[0].I + 63) / 64));
          return RtValue::ofPtr(Bitmaps.back()->data());
        },
        400);
    Natives.add(
        "set_bit",
        [](const RtValue *Args, unsigned) {
          auto *Words = static_cast<uint64_t *>(Args[0].P);
          int64_t Key = Args[1].I & 511;
          Words[Key / 64] |= uint64_t(1) << (Key % 64);
          return RtValue();
        },
        120);
    Natives.add(
        "get_bit",
        [](const RtValue *Args, unsigned) {
          auto *Words = static_cast<const uint64_t *>(Args[0].P);
          int64_t Key = Args[1].I & 511;
          return RtValue::ofInt((Words[Key / 64] >> (Key % 64)) & 1);
        },
        100);
    Natives.add(
        "gen_item",
        [](const RtValue *Args, unsigned) {
          uint64_t H = static_cast<uint64_t>(Args[0].I) * 40503 +
                       static_cast<uint64_t>(Args[1].I) * 9973 + 17;
          return RtValue::ofInt(static_cast<int64_t>(H % 512));
        },
        90);
    Natives.add(
        "eval_support",
        [this](const RtValue *Args, unsigned) {
          auto *Words = static_cast<const uint64_t *>(Args[0].P);
          int64_t Support = 0;
          for (const auto &Txn : Db) {
            bool Covered = true;
            for (size_t W = 0; W < Txn.size(); ++W)
              Covered &= (Words[W] & ~Txn[W]) == 0;
            Support += Covered;
          }
          return RtValue::ofInt(Support + (Words[0] & 7));
        },
        9000);
    Natives.add(
        "emit_itemset",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Output.push_back({Args[0].I, Args[1].I});
          return RtValue();
        },
        5200, "console");
  }

  std::map<std::string, double> costHints() const override {
    return {{"bitmap_alloc", 400}, {"set_bit", 120},
            {"get_bit", 100},      {"gen_item", 90},
            {"eval_support", 9000}, {"emit_itemset", 5200}};
  }

  uint64_t checksum() const override {
    uint64_t Sum = 0;
    for (auto [I, S] : Output)
      Sum += static_cast<uint64_t>(I + 3) * 1099511628211ULL ^
             static_cast<uint64_t>(S);
    return Sum;
  }

  std::vector<int64_t> orderedOutput() const override {
    std::vector<int64_t> Order;
    for (auto [I, S] : Output)
      Order.push_back(I);
    return Order;
  }

  void reset() override {
    Output.clear();
    Bitmaps.clear();
  }

private:
  std::vector<std::vector<uint64_t>> Db;
  std::mutex M;
  std::vector<std::pair<int64_t, int64_t>> Output;
  std::vector<std::unique_ptr<std::vector<uint64_t>>> Bitmaps;
};

} // namespace

std::unique_ptr<Workload> commset::makeGetiWorkload() {
  return std::make_unique<GetiWorkload>();
}
