//===- HmmerWorkload.cpp - Figure 6b program ------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// 456.hmmer (paper §5.1): each iteration draws a random protein sequence
// (shared-seed RNG), scores it against a profile HMM with a dynamically
// allocated DP matrix, and folds the score into a histogram. The paper's
// three annotation sites are reproduced: (a) the RNG is self-commutative
// (any permutation of the stream preserves the distribution), (b) the
// histogram update is self-commutative (an abstract SUM), (c) matrix
// alloc/free commute on separate iterations (ASET, a predicated self set).
//
// The RNG is a CSet-C function over a global seed so the TM mode has a
// real transactional target. Paper results: DOALL+Spin 5.82x; spin beats
// mutex (sleep/wakeup under contention) beats TM; PS-DSWP 5.3x with the
// RNG in a sequential stage.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <array>
#include <atomic>
#include <mutex>

using namespace commset;

namespace {

const char *HmmerSource = R"(
int seed = 12345;
#pragma commset decl(ASET)
#pragma commset predicate(ASET, (int a), (int b), a != b)
#pragma commset decl(BSET, self)
#pragma commset predicate(BSET, (int a), (int b), a != b)
#pragma commset member(SELF)
int rng_next() {
  seed = seed * 1103 + 12347;
  if (seed < 0) {
    seed = 0 - seed;
  }
  return seed;
}
#pragma commset member(ASET(tag), BSET(tag))
extern ptr matrix_alloc(int len, int tag);
#pragma commset effects(matrix_alloc, malloc, reads(heap), writes(heap))
extern int viterbi_score(ptr m, int len, int r0, int r1, int r2);
#pragma commset effects(viterbi_score, argmem)
#pragma commset member(ASET(tag), BSET(tag))
extern void matrix_free(ptr m, int tag);
#pragma commset effects(matrix_free, argmem, reads(heap), writes(heap))
#pragma commset member(SELF)
extern void hist_add(int score);
#pragma commset effects(hist_add, reads(hist), writes(hist))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    int r0 = rng_next();
    int r1 = rng_next();
    int r2 = rng_next();
    int r3 = rng_next();
    int r4 = rng_next();
    int r5 = rng_next();
    int len = 80 + (r0 + r3 + r5) % 60;
    ptr m = matrix_alloc(len, i);
    int sc = viterbi_score(m, len, r1, r2, r4);
    hist_add(sc);
    matrix_free(m, i);
  }
}
)";

/// Small profile-HMM Viterbi: fills an L x K DP matrix with
/// max/add recurrences over synthetic emissions derived from the random
/// draws. Real compute (so parallel runs are checked for races) with a
/// declared virtual cost matching the paper-era machine.
int64_t viterbiFill(int32_t *M, int64_t Len, int64_t R1, int64_t R2,
                    int64_t R3) {
  constexpr int K = 8;
  for (int S = 0; S < K; ++S)
    M[S] = static_cast<int32_t>((R1 >> S) & 0xFF);
  for (int64_t I = 1; I < Len; ++I) {
    int32_t *Prev = M + (I - 1) * K;
    int32_t *Cur = M + I * K;
    for (int S = 0; S < K; ++S) {
      int32_t Emit = static_cast<int32_t>(
          ((R2 * (I + 1) + R3 * (S + 3)) >> 7) & 0x3F);
      int32_t Best = Prev[S] + Emit;
      int32_t Diag = Prev[(S + K - 1) % K] + (Emit >> 1);
      if (Diag > Best)
        Best = Diag;
      Cur[S] = Best - 1;
    }
  }
  int32_t Best = M[(Len - 1) * K];
  for (int S = 1; S < K; ++S)
    if (M[(Len - 1) * K + S] > Best)
      Best = M[(Len - 1) * K + S];
  return Best;
}

class HmmerWorkload : public Workload {
public:
  const char *name() const override { return "hmmer"; }

  std::string source(const std::string &Variant) const override {
    if (Variant == "plain")
      return stripCommsetAnnotations(HmmerSource);
    return HmmerSource;
  }

  int defaultScale() const override { return 300; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "matrix_alloc",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Matrices.push_back(std::make_unique<std::vector<int32_t>>(
              static_cast<size_t>(Args[0].I) * 8));
          return RtValue::ofPtr(Matrices.back()->data());
        },
        900);
    Natives.add(
        "viterbi_score",
        [](const RtValue *Args, unsigned) {
          return RtValue::ofInt(viterbiFill(
              static_cast<int32_t *>(Args[0].P), Args[1].I, Args[2].I,
              Args[3].I, Args[4].I));
        },
        [](const RtValue *Args, unsigned) {
          // DP over len x 8 states: ~330 ns per residue row.
          return 2000 + static_cast<uint64_t>(Args[1].I) * 330;
        });
    Natives.add(
        "matrix_free", [](const RtValue *, unsigned) { return RtValue(); },
        700);
    Natives.add(
        "hist_add",
        [this](const RtValue *Args, unsigned) {
          int64_t Bin = (Args[0].I / 64) & 63;
          Histogram[static_cast<size_t>(Bin)].fetch_add(
              1, std::memory_order_relaxed);
          Sum.fetch_add(Args[0].I, std::memory_order_relaxed);
          return RtValue();
        },
        350);
  }

  std::map<std::string, double> costHints() const override {
    return {{"matrix_alloc", 900},
            {"viterbi_score", 38000},
            {"matrix_free", 700},
            {"hist_add", 350}};
  }

  uint64_t checksum() const override {
    // COMMSET legally permutes the RNG stream, so scores differ between
    // schedules (paper §5.1: any permutation preserves the distribution);
    // the scored-sequence count is the invariant output.
    uint64_t Total = 0;
    for (size_t I = 0; I < Histogram.size(); ++I)
      Total += static_cast<uint64_t>(Histogram[I].load());
    return Total;
  }

  void reset() override {
    for (auto &Bin : Histogram)
      Bin.store(0);
    Sum.store(0);
    Matrices.clear();
  }

private:
  std::array<std::atomic<int64_t>, 64> Histogram = {};
  std::atomic<int64_t> Sum{0};
  std::mutex M;
  std::vector<std::unique_ptr<std::vector<int32_t>>> Matrices;
};

} // namespace

std::unique_ptr<Workload> commset::makeHmmerWorkload() {
  return std::make_unique<HmmerWorkload>();
}
