//===- KmeansWorkload.cpp - Figure 6g program -----------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// kmeans (paper §5.6): each iteration finds the nearest cluster center for
// an object and folds the object into that center's accumulators. Updates
// may be reordered (each order yields a different but valid clustering),
// so the update block joins a SELF COMMSET — the loop's only carried
// dependence. The update is a CSet-C function over global accumulators,
// giving the TM mode a real transactional member. Paper results: DOALL
// peaks ~4x at 5 threads then degrades on lock contention; the three-stage
// PS-DSWP reaches 5.2x by moving the contended update into a sequential
// stage; TM trails at 2.7x.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <array>
#include <mutex>

using namespace commset;

namespace {

const char *KmeansSource = R"(
int c0; int c1; int c2; int c3;
int n0; int n1; int n2; int n3;
#pragma commset member(SELF)
void center_update(int c, int v) {
  int k = 0;
  for (int j = 0; j < 120; j++) {
    k = k + j * v;
  }
  if (c == 0) { c0 = c0 + k; n0 = n0 + 1; }
  if (c == 1) { c1 = c1 + k; n1 = n1 + 1; }
  if (c == 2) { c2 = c2 + k; n2 = n2 + 1; }
  if (c == 3) { c3 = c3 + k; n3 = n3 + 1; }
}
extern ptr obj_get(int i);
#pragma commset effects(obj_get, malloc)
extern int nearest(ptr o);
#pragma commset effects(nearest, argmem)
extern int obj_val(ptr o);
#pragma commset effects(obj_val, argmem)
int main_loop(int n) {
  for (int i = 0; i < n; i++) {
    ptr o = obj_get(i);
    int c = nearest(o);
    int v = obj_val(o);
    center_update(c, v);
  }
  return c0 + c1 + c2 + c3 + n0 + n1 + n2 + n3;
}
)";

class KmeansWorkload : public Workload {
public:
  KmeansWorkload() {
    Lcg Rng(0x4EA45);
    Objects.resize(1024);
    for (auto &Obj : Objects)
      for (double &Dim : Obj)
        Dim = Rng.nextDouble() * 100.0;
  }

  const char *name() const override { return "kmeans"; }

  std::string source(const std::string &Variant) const override {
    if (Variant == "plain")
      return stripCommsetAnnotations(KmeansSource);
    return KmeansSource;
  }

  int defaultScale() const override { return 400; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "obj_get",
        [this](const RtValue *Args, unsigned) {
          size_t Id = static_cast<size_t>(Args[0].I) % Objects.size();
          return RtValue::ofPtr(Objects[Id].data());
        },
        400);
    Natives.add(
        "nearest",
        [this](const RtValue *Args, unsigned) {
          auto *Dims = static_cast<const double *>(Args[0].P);
          // Distance to 4 fixed centers over 16 dims, several refinement
          // rounds (models the paper's high-dimensional objects).
          double Best = 1e300;
          int64_t BestC = 0;
          for (int Round = 0; Round < 12; ++Round) {
            for (int C = 0; C < 4; ++C) {
              double Dist = 0;
              for (int D = 0; D < 16; ++D) {
                double Delta = Dims[D] - (C * 25.0 + D + Round * 0.01);
                Dist += Delta * Delta;
              }
              if (Dist < Best) {
                Best = Dist;
                BestC = C;
              }
            }
          }
          return RtValue::ofInt(BestC);
        },
        8000);
    Natives.add(
        "obj_val",
        [](const RtValue *Args, unsigned) {
          auto *Dims = static_cast<const double *>(Args[0].P);
          return RtValue::ofInt(static_cast<int64_t>(Dims[0] + Dims[7]));
        },
        200);
  }

  std::map<std::string, double> costHints() const override {
    return {{"obj_get", 400}, {"nearest", 8000}, {"obj_val", 200}};
  }

  /// Output lives in program globals; runScheme's Result carries the sum.
  uint64_t checksum() const override { return 0; }

  void reset() override {}

private:
  std::vector<std::array<double, 16>> Objects;
};

} // namespace

std::unique_ptr<Workload> commset::makeKmeansWorkload() {
  return std::make_unique<KmeansWorkload>();
}
