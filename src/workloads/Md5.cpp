//===- Md5.cpp - RFC 1321 MD5 ---------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Implemented from the RFC 1321 specification (reference constants and
// round structure); verified against the RFC's official test vectors in
// tests/WorkloadTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "commset/Workloads/Kernels.h"

#include <cstring>

using namespace commset;

namespace {

inline uint32_t rotl(uint32_t X, unsigned C) {
  return (X << C) | (X >> (32 - C));
}

// Per-round shift amounts.
const unsigned Shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
const uint32_t SineTable[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
    0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
    0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
    0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
    0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
    0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
    0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
    0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

} // namespace

void Md5::reset() {
  State[0] = 0x67452301;
  State[1] = 0xefcdab89;
  State[2] = 0x98badcfe;
  State[3] = 0x10325476;
  BitCount = 0;
  BufferLen = 0;
}

void Md5::processBlock(const uint8_t Block[64]) {
  uint32_t M[16];
  for (unsigned I = 0; I < 16; ++I)
    M[I] = static_cast<uint32_t>(Block[I * 4]) |
           (static_cast<uint32_t>(Block[I * 4 + 1]) << 8) |
           (static_cast<uint32_t>(Block[I * 4 + 2]) << 16) |
           (static_cast<uint32_t>(Block[I * 4 + 3]) << 24);

  uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
  for (unsigned I = 0; I < 64; ++I) {
    uint32_t F;
    unsigned G;
    if (I < 16) {
      F = (B & C) | (~B & D);
      G = I;
    } else if (I < 32) {
      F = (D & B) | (~D & C);
      G = (5 * I + 1) % 16;
    } else if (I < 48) {
      F = B ^ C ^ D;
      G = (3 * I + 5) % 16;
    } else {
      F = C ^ (B | ~D);
      G = (7 * I) % 16;
    }
    uint32_t Temp = D;
    D = C;
    C = B;
    B = B + rotl(A + F + SineTable[I] + M[G], Shifts[I]);
    A = Temp;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
}

void Md5::update(const uint8_t *Data, size_t Len) {
  BitCount += static_cast<uint64_t>(Len) * 8;
  while (Len > 0) {
    size_t Space = 64 - BufferLen;
    size_t Take = Len < Space ? Len : Space;
    std::memcpy(Buffer + BufferLen, Data, Take);
    BufferLen += Take;
    Data += Take;
    Len -= Take;
    if (BufferLen == 64) {
      processBlock(Buffer);
      BufferLen = 0;
    }
  }
}

std::vector<uint8_t> Md5::final128() {
  uint64_t Bits = BitCount;
  // Padding: 0x80, zeros, then the 64-bit length.
  uint8_t Pad = 0x80;
  update(&Pad, 1);
  uint8_t Zero = 0;
  while (BufferLen != 56)
    update(&Zero, 1);
  // Length bytes bypass the counter.
  uint8_t LenBytes[8];
  for (unsigned I = 0; I < 8; ++I)
    LenBytes[I] = static_cast<uint8_t>(Bits >> (8 * I));
  std::memcpy(Buffer + 56, LenBytes, 8);
  processBlock(Buffer);
  BufferLen = 0;

  std::vector<uint8_t> Digest(16);
  for (unsigned I = 0; I < 4; ++I)
    for (unsigned J = 0; J < 4; ++J)
      Digest[I * 4 + J] = static_cast<uint8_t>(State[I] >> (8 * J));
  return Digest;
}

uint64_t Md5::final64() {
  std::vector<uint8_t> Digest = final128();
  uint64_t Value = 0;
  for (unsigned I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Digest[I]) << (8 * I);
  return Value;
}

std::string Md5::hex(const std::vector<uint8_t> &Digest) {
  static const char *Digits = "0123456789abcdef";
  std::string Out;
  for (uint8_t Byte : Digest) {
    Out += Digits[Byte >> 4];
    Out += Digits[Byte & 0xF];
  }
  return Out;
}
