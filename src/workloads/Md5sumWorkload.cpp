//===- Md5sumWorkload.cpp - Figure 6a program -----------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// md5sum (paper §2, §5, Figure 1): the main loop opens each input file,
// computes its MD5 digest, prints it, and closes the file. COMMSET
// annotations let distinct files' operations commute (FSET predicated on
// the loop induction variable), reads commute across iterations through
// the exported READB named block, and printing commute with itself (SELF)
// unless deterministic output is wanted — exactly the paper's running
// example. Files are an in-memory VirtualFs (substitution documented in
// DESIGN.md).
//
// Paper results to reproduce: DOALL+Lib 7.6x, PS-DSWP 5.8x on 8 threads;
// without COMMSET the loop does not parallelize.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <cstring>
#include <mutex>

using namespace commset;

namespace {

const char *Md5Source = R"(
extern ptr fs_open(int fileid);
extern int fs_read(ptr f, ptr buf, int n);
extern void fs_close(ptr f);
extern ptr buf_alloc(int n);
extern void buf_free(ptr b);
extern ptr md5_init();
extern void md5_update(ptr st, ptr buf, int n);
extern int md5_final(ptr st);
extern void print_digest(int i, int d);
#pragma commset effects(fs_open, malloc, reads(fs), writes(fs))
#pragma commset effects(fs_read, argmem, reads(fs), writes(fs))
#pragma commset effects(fs_close, reads(fs), writes(fs))
#pragma commset effects(buf_alloc, malloc)
#pragma commset effects(buf_free, argmem)
#pragma commset effects(md5_init, malloc)
#pragma commset effects(md5_update, argmem)
#pragma commset effects(md5_final, argmem)
#pragma commset effects(print_digest, reads(console), writes(console))
#pragma commset decl(FSET)
#pragma commset decl(SSET, self)
#pragma commset predicate(FSET, (int i1), (int i2), i1 != i2)
#pragma commset predicate(SSET, (int i1), (int i2), i1 != i2)
#pragma commset namedarg(READB)
void mdfile(ptr st, ptr f, int i) {
  ptr buf = buf_alloc(4096);
  int n = 1;
  while (n > 0) {
    #pragma commset namedblock(READB)
    {
      n = fs_read(f, buf, 4096);
    }
    if (n > 0) {
      md5_update(st, buf, n);
    }
  }
  buf_free(buf);
}
void main_loop(int nfiles) {
  for (int i = 0; i < nfiles; i = i + 1) {
    ptr f;
    #pragma commset member(SELF, FSET(i))
    {
      f = fs_open(i);
    }
    ptr st = md5_init();
    #pragma commset enable(READB: SSET(i), FSET(i))
    mdfile(st, f, i);
    int d = md5_final(st);
    #pragma commset member(SELF, FSET(i))
    {
      print_digest(i, d);
      fs_close(f);
    }
  }
}
)";

class Md5sumWorkload : public Workload {
public:
  Md5sumWorkload() : Fs(512, 48 * 1024, 32 * 1024) {}

  const char *name() const override { return "md5sum"; }

  std::string source(const std::string &Variant) const override {
    std::string Src = Md5Source;
    if (Variant == "noself") {
      // Deterministic digests (paper §2): the print block keeps FSET but
      // loses SELF, forcing in-order output.
      size_t Pos = Src.rfind("#pragma commset member(SELF, FSET(i))");
      Src.replace(Pos, strlen("#pragma commset member(SELF, FSET(i))"),
                  "#pragma commset member(FSET(i))");
      return Src;
    }
    if (Variant == "plain")
      return stripCommsetAnnotations(Src);
    return Src;
  }

  int defaultScale() const override { return 256; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "fs_open",
        [this](const RtValue *Args, unsigned) {
          return RtValue::ofPtr(
              Fs.open(static_cast<unsigned>(Args[0].I % Fs.numFiles())));
        },
        600, "fs");
    Natives.add(
        "fs_read",
        [this](const RtValue *Args, unsigned) {
          auto *H = static_cast<VirtualFs::Handle *>(Args[0].P);
          auto *Buf = static_cast<uint8_t *>(Args[1].P);
          return RtValue::ofInt(static_cast<int64_t>(
              Fs.read(H, Buf, static_cast<size_t>(Args[2].I))));
        },
        [](const RtValue *Args, unsigned) {
          return 250 + static_cast<uint64_t>(Args[2].I) / 20;
        });
    Natives.add(
        "fs_close", [](const RtValue *, unsigned) { return RtValue(); },
        300, "fs");
    Natives.add(
        "buf_alloc",
        [this](const RtValue *Args, unsigned) {
          return RtValue::ofPtr(allocBuffer(Args[0].I));
        },
        150);
    Natives.add(
        "buf_free", [](const RtValue *, unsigned) { return RtValue(); },
        100);
    Natives.add(
        "md5_init",
        [this](const RtValue *, unsigned) {
          return RtValue::ofPtr(allocState());
        },
        200);
    Natives.add(
        "md5_update",
        [](const RtValue *Args, unsigned) {
          auto *St = static_cast<Md5 *>(Args[0].P);
          St->update(static_cast<const uint8_t *>(Args[1].P),
                     static_cast<size_t>(Args[2].I));
          return RtValue();
        },
        [](const RtValue *Args, unsigned) {
          // MD5 throughput: ~0.45 ns/byte on the paper-era machine.
          return 100 + static_cast<uint64_t>(Args[2].I) * 9 / 20;
        });
    Natives.add(
        "md5_final",
        [](const RtValue *Args, unsigned) {
          auto *St = static_cast<Md5 *>(Args[0].P);
          return RtValue::ofInt(
              static_cast<int64_t>(St->final64() & 0x7FFFFFFFFFFFFFFF));
        },
        300);
    Natives.add(
        "print_digest",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(OutM);
          Output.push_back({Args[0].I, Args[1].I});
          return RtValue();
        },
        700, "console");
  }

  std::map<std::string, double> costHints() const override {
    return {{"fs_open", 600},     {"fs_read", 2700},  {"fs_close", 300},
            {"buf_alloc", 150},   {"buf_free", 100},  {"md5_init", 200},
            {"md5_update", 2000}, {"md5_final", 300}, {"print_digest", 700}};
  }

  uint64_t checksum() const override {
    uint64_t Sum = 0;
    for (auto [I, D] : Output)
      Sum += static_cast<uint64_t>(I + 1) * 2654435761u ^
             static_cast<uint64_t>(D);
    return Sum;
  }

  std::vector<int64_t> orderedOutput() const override {
    std::vector<int64_t> Order;
    for (auto [I, D] : Output)
      Order.push_back(I);
    return Order;
  }

  void reset() override {
    Output.clear();
    Buffers.clear();
    States.clear();
  }

private:
  uint8_t *allocBuffer(int64_t Size) {
    std::lock_guard<std::mutex> Guard(OutM);
    Buffers.push_back(
        std::make_unique<std::vector<uint8_t>>(static_cast<size_t>(Size)));
    return Buffers.back()->data();
  }
  Md5 *allocState() {
    std::lock_guard<std::mutex> Guard(OutM);
    States.push_back(std::make_unique<Md5>());
    return States.back().get();
  }

  VirtualFs Fs;
  std::mutex OutM;
  std::vector<std::pair<int64_t, int64_t>> Output;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> Buffers;
  std::vector<std::unique_ptr<Md5>> States;
};

} // namespace

std::unique_ptr<Workload> commset::makeMd5sumWorkload() {
  return std::make_unique<Md5sumWorkload>();
}
