//===- PotraceWorkload.cpp - Figure 6f program ----------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// potrace (paper §5.5): vectorizes bitmaps into smooth paths. The code
// pattern mirrors md5sum — load image, trace contours (heavy, private),
// write the output — with an option that appends every output into a
// single file: in that mode the SELF annotation on the write block is
// omitted to keep writes in sequential order. Paper results: DOALL 5.5x
// peaking at 7 threads (I/O costs dominate beyond that); the single-file
// PS-DSWP variant is limited to 2.2x by the sequential writes.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <cstring>
#include <mutex>

using namespace commset;

namespace {

const char *PotraceSourceMulti = R"(
#pragma commset decl(FSET)
#pragma commset predicate(FSET, (int a), (int b), a != b)
extern ptr img_load(int i);
#pragma commset effects(img_load, malloc, reads(imgfs), writes(imgfs))
extern ptr trace_contours(ptr img);
#pragma commset effects(trace_contours, malloc, argmem)
extern int smooth_path(ptr path);
#pragma commset effects(smooth_path, argmem)
extern void img_write(int i, ptr path, int len);
#pragma commset effects(img_write, reads(outfs), writes(outfs))
extern void img_write_single(int i, ptr path, int len);
#pragma commset effects(img_write_single, reads(outfs), writes(outfs))
extern void img_free(ptr img);
#pragma commset effects(img_free, argmem)
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    ptr img;
    #pragma commset member(SELF, FSET(i))
    {
      img = img_load(i);
    }
    ptr path = trace_contours(img);
    int len = smooth_path(path);
    #pragma commset member(SELF, FSET(i))
    {
      img_write(i, path, len);
      img_free(img);
    }
  }
}
)";

class PotraceWorkload : public Workload {
public:
  PotraceWorkload() {
    // Synthetic 64x64 bitmaps: pseudo-random blobs per image id.
    Lcg Rng(0x907ACE);
    Images.resize(128);
    for (auto &Img : Images) {
      Img.resize(64 * 64 / 8);
      for (auto &Byte : Img)
        Byte = static_cast<uint8_t>(Rng.next(256)) &
               static_cast<uint8_t>(Rng.next(256));
    }
  }

  const char *name() const override { return "potrace"; }

  std::string source(const std::string &Variant) const override {
    std::string Src = PotraceSourceMulti;
    if (Variant == "noself") {
      // Single-output-file mode: one big output stream, writes keep
      // sequential order and are larger (the whole multi-image container
      // is appended, paper section 5.5).
      size_t Pos = Src.rfind("member(SELF, FSET(i))");
      Src.replace(Pos, strlen("member(SELF, FSET(i))"), "member(FSET(i))");
      Pos = Src.find("img_write(i, path, len);");
      Src.replace(Pos, strlen("img_write(i, path, len);"),
                  "img_write_single(i, path, len);");
      return Src;
    }
    if (Variant == "plain")
      return stripCommsetAnnotations(Src);
    return Src;
  }

  int defaultScale() const override { return 256; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "img_load",
        [this](const RtValue *Args, unsigned) {
          size_t Id = static_cast<size_t>(Args[0].I) % Images.size();
          return RtValue::ofPtr(
              const_cast<uint8_t *>(Images[Id].data()));
        },
        1100, "imgfs");
    Natives.add(
        "trace_contours",
        [this](const RtValue *Args, unsigned) {
          // Contour following: count sign changes along rows/columns and
          // produce a synthetic path buffer.
          auto *Bits = static_cast<const uint8_t *>(Args[0].P);
          auto Path = std::make_unique<std::vector<int32_t>>();
          int32_t Acc = 0;
          for (int Pass = 0; Pass < 6; ++Pass) {
            for (int I = 1; I < 64 * 64 / 8; ++I) {
              int Edge = __builtin_popcount(
                  static_cast<unsigned>(Bits[I] ^ Bits[I - 1]));
              Acc += Edge * (Pass + 1);
              if (Edge > 3)
                Path->push_back(Acc);
            }
          }
          Path->push_back(Acc);
          std::lock_guard<std::mutex> Guard(M);
          Paths.push_back(std::move(Path));
          return RtValue::ofPtr(Paths.back()->data());
        },
        19000);
    Natives.add(
        "smooth_path",
        [](const RtValue *Args, unsigned) {
          auto *Points = static_cast<int32_t *>(Args[0].P);
          // Bezier-ish smoothing over the stored accumulator trail.
          int64_t Len = 0;
          for (int I = 0; I < 48; ++I)
            Len += (Points[0] * (I + 1)) >> (I % 5);
          return RtValue::ofInt(Len & 0xFFFF);
        },
        6000);
    Natives.add(
        "img_write",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Written.push_back({Args[0].I, Args[2].I});
          return RtValue();
        },
        3200, "outfs");
    Natives.add(
        "img_write_single",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Written.push_back({Args[0].I, Args[2].I});
          return RtValue();
        },
        11000, "outfs");
    Natives.add(
        "img_free", [](const RtValue *, unsigned) { return RtValue(); },
        150);
  }

  std::map<std::string, double> costHints() const override {
    return {{"img_load", 1100},     {"trace_contours", 19000},
            {"smooth_path", 6000},  {"img_write", 3200},
            {"img_write_single", 11000}, {"img_free", 150}};
  }

  uint64_t checksum() const override {
    uint64_t Sum = 0;
    for (auto [I, Len] : Written)
      Sum += static_cast<uint64_t>(I + 29) * 1099511628211ULL ^
             static_cast<uint64_t>(Len);
    return Sum;
  }

  std::vector<int64_t> orderedOutput() const override {
    std::vector<int64_t> Order;
    for (auto [I, Len] : Written)
      Order.push_back(I);
    return Order;
  }

  void reset() override {
    Written.clear();
    Paths.clear();
  }

private:
  std::vector<std::vector<uint8_t>> Images;
  std::mutex M;
  std::vector<std::pair<int64_t, int64_t>> Written;
  std::vector<std::unique_ptr<std::vector<int32_t>>> Paths;
};

} // namespace

std::unique_ptr<Workload> commset::makePotraceWorkload() {
  return std::make_unique<PotraceWorkload>();
}
