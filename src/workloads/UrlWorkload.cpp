//===- UrlWorkload.cpp - Figure 6h program --------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// url (paper §5.7): switches packets on their URL and logs matched fields.
// The protocol permits out-of-order switching, so the packet-pool dequeue
// and the logger are SELF members; the logger's set carries COMMSETNOSYNC
// ("no synchronization was necessary for the logging function") while the
// dequeue gets compiler-inserted locks. Paper results: DOALL+Spin 7.7x
// (low dequeue contention, fully overlapped matching); the two-stage
// PS-DSWP reaches 3.7x.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"
#include "commset/Workloads/Kernels.h"

#include <atomic>
#include <mutex>

using namespace commset;

namespace {

const char *UrlSource = R"(
#pragma commset decl(LSET, self)
#pragma commset nosync(LSET)
#pragma commset member(SELF)
extern int pkt_dequeue();
#pragma commset effects(pkt_dequeue, reads(pool), writes(pool))
extern int url_match(int pkt);
#pragma commset effects(url_match, pure)
#pragma commset member(LSET)
extern void log_pkt(int pkt, int m);
#pragma commset effects(log_pkt, reads(log), writes(log))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    int pkt = pkt_dequeue();
    int m = url_match(pkt);
    log_pkt(pkt, m);
  }
}
)";

const char *Patterns[] = {"/index.html", "/images/", "/cgi-bin/",
                          "/news/",      "/shop/",   "/api/v1/",
                          "/static/js/", "/video/"};

class UrlWorkload : public Workload {
public:
  UrlWorkload() {
    // Packet pool: synthetic URLs assembled from the pattern fragments.
    Lcg Rng(0x0591);
    Pool.resize(2048);
    for (auto &Url : Pool) {
      Url = "http://host";
      Url += std::to_string(Rng.next(64));
      Url += Patterns[Rng.next(8)];
      Url += std::to_string(Rng.next(100000));
    }
  }

  const char *name() const override { return "url"; }

  std::string source(const std::string &Variant) const override {
    if (Variant == "plain")
      return stripCommsetAnnotations(UrlSource);
    return UrlSource;
  }

  int defaultScale() const override { return 400; }

  void registerNatives(NativeRegistry &Natives) override {
    Natives.add(
        "pkt_dequeue",
        [this](const RtValue *, unsigned) {
          return RtValue::ofInt(
              Cursor.fetch_add(1, std::memory_order_relaxed));
        },
        350);
    Natives.add(
        "url_match",
        [this](const RtValue *Args, unsigned) {
          const std::string &Url =
              Pool[static_cast<size_t>(Args[0].I) % Pool.size()];
          // Rule table scan: repeated substring search over all patterns.
          int64_t Match = -1;
          for (int Round = 0; Round < 24; ++Round)
            for (int P = 0; P < 8; ++P)
              if (Url.find(Patterns[P]) != std::string::npos)
                Match = P * 31 + Round % 3;
          return RtValue::ofInt(Match);
        },
        12000);
    Natives.add(
        "log_pkt",
        [this](const RtValue *Args, unsigned) {
          std::lock_guard<std::mutex> Guard(M);
          Log.push_back({Args[0].I, Args[1].I});
          return RtValue();
        },
        500);
  }

  std::map<std::string, double> costHints() const override {
    return {{"pkt_dequeue", 350}, {"url_match", 12000}, {"log_pkt", 500}};
  }

  uint64_t checksum() const override {
    uint64_t Sum = 0;
    for (auto [Pkt, Match] : Log)
      Sum += static_cast<uint64_t>(Pkt + 41) * 2654435761u ^
             static_cast<uint64_t>(Match + 2);
    return Sum;
  }

  void reset() override {
    Log.clear();
    Cursor.store(0);
  }

private:
  std::vector<std::string> Pool;
  std::atomic<int64_t> Cursor{0};
  std::mutex M;
  std::vector<std::pair<int64_t, int64_t>> Log;
};

} // namespace

std::unique_ptr<Workload> commset::makeUrlWorkload() {
  return std::make_unique<UrlWorkload>();
}
