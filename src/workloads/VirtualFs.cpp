//===- VirtualFs.cpp ------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Workloads/Kernels.h"

#include <cassert>
#include <cstring>

using namespace commset;

VirtualFs::VirtualFs(unsigned NumFiles, size_t BaseSize, size_t SizeJitter) {
  Files.resize(NumFiles);
  for (unsigned FileId = 0; FileId < NumFiles; ++FileId) {
    Lcg Rng(0x9e3779b97f4a7c15ULL ^ (FileId * 0x100000001b3ULL + 7));
    size_t Size = BaseSize + (SizeJitter ? Rng.next(SizeJitter) : 0);
    auto &Data = Files[FileId];
    Data.resize(Size);
    for (size_t I = 0; I < Size; ++I)
      Data[I] = static_cast<uint8_t>(Rng.next(256));
  }
}

VirtualFs::Handle *VirtualFs::open(unsigned FileId) {
  std::lock_guard<std::mutex> Guard(M);
  assert(FileId < Files.size() && "file id out of range");
  auto H = std::make_unique<Handle>();
  H->FileId = FileId;
  H->Position = 0;
  ++Opens;
  Handles.push_back(std::move(H));
  return Handles.back().get();
}

size_t VirtualFs::read(Handle *H, uint8_t *Out, size_t Len) {
  // Handle state is private to its owner; only the content table is shared
  // (and immutable after construction).
  const std::vector<uint8_t> &Data = Files[H->FileId];
  if (H->Position >= Data.size())
    return 0;
  size_t Take = std::min(Len, Data.size() - H->Position);
  std::memcpy(Out, Data.data() + H->Position, Take);
  H->Position += Take;
  return Take;
}

void VirtualFs::close(Handle *H) {
  // Handles are reclaimed with the VirtualFs; close is a semantic marker.
  (void)H;
}

size_t VirtualFs::fileSize(unsigned FileId) const {
  return Files[FileId].size();
}

const std::vector<uint8_t> &VirtualFs::contents(unsigned FileId) const {
  return Files[FileId];
}
