//===- Workload.cpp -------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Workloads/Workload.h"

#include "WorkloadsInternal.h"
#include "commset/Support/StringUtils.h"

using namespace commset;

std::unique_ptr<Workload> commset::makeWorkload(const std::string &Name) {
  if (Name == "md5sum")
    return makeMd5sumWorkload();
  if (Name == "hmmer" || Name == "456.hmmer")
    return makeHmmerWorkload();
  if (Name == "geti")
    return makeGetiWorkload();
  if (Name == "eclat")
    return makeEclatWorkload();
  if (Name == "em3d")
    return makeEm3dWorkload();
  if (Name == "potrace")
    return makePotraceWorkload();
  if (Name == "kmeans")
    return makeKmeansWorkload();
  if (Name == "url")
    return makeUrlWorkload();
  return nullptr;
}

std::vector<std::string> commset::workloadNames() {
  return {"md5sum", "hmmer",   "geti",   "eclat",
          "em3d",   "potrace", "kmeans", "url"};
}

std::string commset::stripCommsetAnnotations(const std::string &Source) {
  std::string Out;
  for (const std::string &Line : splitString(Source, '\n')) {
    bool IsCommsetPragma =
        Line.find("#pragma commset") != std::string::npos &&
        Line.find("effects") == std::string::npos;
    if (!IsCommsetPragma) {
      Out += Line;
      Out += '\n';
    }
  }
  return Out;
}
