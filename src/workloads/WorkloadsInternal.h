//===- WorkloadsInternal.h - Per-workload factories ---------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SRC_WORKLOADS_WORKLOADSINTERNAL_H
#define COMMSET_SRC_WORKLOADS_WORKLOADSINTERNAL_H

#include "commset/Workloads/Workload.h"

namespace commset {

std::unique_ptr<Workload> makeMd5sumWorkload();
std::unique_ptr<Workload> makeHmmerWorkload();
std::unique_ptr<Workload> makeGetiWorkload();
std::unique_ptr<Workload> makeEclatWorkload();
std::unique_ptr<Workload> makeEm3dWorkload();
std::unique_ptr<Workload> makePotraceWorkload();
std::unique_ptr<Workload> makeKmeansWorkload();
std::unique_ptr<Workload> makeUrlWorkload();

} // namespace commset

#endif // COMMSET_SRC_WORKLOADS_WORKLOADSINTERNAL_H
