//===- AnalysisTest.cpp - Dominators/loops/effects/PDG tests --------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "commset/Analysis/CallGraph.h"
#include "commset/Analysis/Dominators.h"
#include "commset/Analysis/Effects.h"
#include "commset/Analysis/LoopInfo.h"
#include "commset/Analysis/PDG.h"
#include "commset/Analysis/SCC.h"
#include "commset/Driver/Compilation.h"
#include "commset/IR/Printer.h"
#include "commset/Support/StringUtils.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace commset;
using namespace commset::test;

namespace {

std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C.get(), nullptr) << Diags.str();
  return C;
}

std::unique_ptr<Compilation::LoopTarget>
analyzeOk(Compilation &C, const std::string &Func) {
  DiagnosticEngine Diags;
  auto T = C.analyzeLoop(Func, Diags);
  EXPECT_NE(T.get(), nullptr) << Diags.str();
  return T;
}

//===----------------------------------------------------------------------===//
// Dominators / loops
//===----------------------------------------------------------------------===//

TEST(DominatorTest, DiamondAndLoop) {
  auto C = compileOk("extern void sink(int v);\n"
                     "void f(int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    if (i > 2) { sink(1); } else { sink(2); }\n"
                     "  }\n"
                     "}\n");
  Function *F = C->module().findFunction("f");
  F->numberInstructions();
  DomTree DT = computeDominators(*F);
  // Entry dominates everything.
  for (const auto &BB : F->Blocks)
    EXPECT_TRUE(DT.dominates(F->entry()->Id, BB->Id));
  LoopInfo LI = LoopInfo::compute(*F, DT);
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *L = LI.topLevel()[0];
  EXPECT_TRUE(analyzeInduction(*F, *L));
  EXPECT_EQ(L->Induction.Step, 1);
  EXPECT_TRUE(L->SingleHeaderExit);
  EXPECT_NE(L->Induction.ExitCompare, nullptr);
}

TEST(DominatorTest, NestedLoops) {
  auto C = compileOk("extern void sink(int v);\n"
                     "void f(int n) {\n"
                     "  for (int i = 0; i < n; i++)\n"
                     "    for (int j = 0; j < i; j += 2)\n"
                     "      sink(j);\n"
                     "}\n");
  Function *F = C->module().findFunction("f");
  F->numberInstructions();
  DomTree DT = computeDominators(*F);
  LoopInfo LI = LoopInfo::compute(*F, DT);
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *Outer = LI.topLevel()[0];
  ASSERT_EQ(Outer->SubLoops.size(), 1u);
  Loop *Inner = Outer->SubLoops[0];
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_TRUE(analyzeInduction(*F, *Inner));
  EXPECT_EQ(Inner->Induction.Step, 2);
}

TEST(DominatorTest, WhileLoopBreakMeansExtraExit) {
  auto C = compileOk("extern int get();\n"
                     "void f() {\n"
                     "  for (int i = 0; i < 10; i++) {\n"
                     "    if (get() == 0) break;\n"
                     "  }\n"
                     "}\n");
  Function *F = C->module().findFunction("f");
  F->numberInstructions();
  DomTree DT = computeDominators(*F);
  LoopInfo LI = LoopInfo::compute(*F, DT);
  ASSERT_EQ(LI.topLevel().size(), 1u);
  Loop *L = LI.topLevel()[0];
  analyzeInduction(*F, *L);
  EXPECT_FALSE(L->SingleHeaderExit);
}

//===----------------------------------------------------------------------===//
// Effects
//===----------------------------------------------------------------------===//

TEST(EffectsTest, TransitiveSummaries) {
  auto C = compileOk("int g;\n"
                     "extern int rng();\n"
                     "#pragma commset effects(rng, reads(seed), "
                     "writes(seed))\n"
                     "int helper() { g = g + 1; return rng(); }\n"
                     "int top() { return helper(); }\n");
  const EffectAnalysis &EA = C->effects();
  Function *Top = C->module().findFunction("top");
  const EffectSummary &S = EA.summaryFor(Top);
  EXPECT_FALSE(S.World);
  EXPECT_EQ(S.ReadGlobals.size(), 1u);
  EXPECT_EQ(S.WriteGlobals.size(), 1u);
  EXPECT_EQ(S.ReadClasses.size(), 1u);
  EXPECT_EQ(S.WriteClasses.size(), 1u);
}

TEST(EffectsTest, MallocWrapperPropagates) {
  auto C = compileOk("extern ptr alloc(int n);\n"
                     "#pragma commset effects(alloc, malloc)\n"
                     "ptr wrap(int n) { return alloc(n); }\n");
  Function *Wrap = C->module().findFunction("wrap");
  EXPECT_TRUE(C->effects().summaryFor(Wrap).Malloc);
}

TEST(EffectsTest, UndeclaredNativeIsWorld) {
  auto C = compileOk("extern void mystery();\n"
                     "void f() { mystery(); }\n");
  Function *F = C->module().findFunction("f");
  EXPECT_TRUE(C->effects().summaryFor(F).World);
}

TEST(EffectsTest, WriteKindsPropagateTwoCallLevels) {
  // The write-discipline map must survive a 2-deep call chain: `top` never
  // touches either global directly, yet its summary proves `acc` is an
  // add-reduction while `last`'s overwrite stays Ordered.
  auto C = compileOk("int acc = 0;\n"
                     "int last = 0;\n"
                     "void leaf_add(int v) { acc = acc + v; }\n"
                     "void leaf_set(int v) { last = v; }\n"
                     "void mid(int v) { leaf_add(v); leaf_set(v); }\n"
                     "void top(int v) { mid(v); }\n");
  Module &M = C->module();
  int AccSlot = M.findGlobal("acc");
  int LastSlot = M.findGlobal("last");
  ASSERT_GE(AccSlot, 0);
  ASSERT_GE(LastSlot, 0);
  const EffectSummary &S = C->effects().summaryFor(M.findFunction("top"));
  ASSERT_EQ(S.GlobalWriteKinds.count(static_cast<unsigned>(AccSlot)), 1u);
  EXPECT_EQ(S.GlobalWriteKinds.at(static_cast<unsigned>(AccSlot)),
            GlobalWriteKind::AddReduction);
  ASSERT_EQ(S.GlobalWriteKinds.count(static_cast<unsigned>(LastSlot)), 1u);
  EXPECT_EQ(S.GlobalWriteKinds.at(static_cast<unsigned>(LastSlot)),
            GlobalWriteKind::Ordered);
}

TEST(EffectsTest, RecursiveReductionReachesFixpoint) {
  // Self-recursion puts the function's own (evolving) summary on its call
  // edge; the fixpoint must converge without widening to World or demoting
  // the reduction.
  auto C = compileOk(
      "int acc = 0;\n"
      "void rec(int v) { if (v > 0) { acc = acc + v; rec(v - 1); } }\n");
  Module &M = C->module();
  int AccSlot = M.findGlobal("acc");
  ASSERT_GE(AccSlot, 0);
  const EffectSummary &S = C->effects().summaryFor(M.findFunction("rec"));
  EXPECT_FALSE(S.World);
  EXPECT_EQ(S.WriteGlobals.count(static_cast<unsigned>(AccSlot)), 1u);
  ASSERT_EQ(S.GlobalWriteKinds.count(static_cast<unsigned>(AccSlot)), 1u);
  EXPECT_EQ(S.GlobalWriteKinds.at(static_cast<unsigned>(AccSlot)),
            GlobalWriteKind::AddReduction);
  EXPECT_TRUE(S.BareReadGlobals.empty());
}

TEST(EffectsTest, ScaledUpdateIsOrderedAndBareRead) {
  // `g = g * 2 + v` reads g outside an add-reduction: the store is Ordered
  // and the load is a bare read (it observes intermediate state).
  auto C = compileOk("int g = 0;\n"
                     "void f(int v) { g = g * 2 + v; }\n");
  Module &M = C->module();
  int Slot = M.findGlobal("g");
  ASSERT_GE(Slot, 0);
  const EffectSummary &S = C->effects().summaryFor(M.findFunction("f"));
  ASSERT_EQ(S.GlobalWriteKinds.count(static_cast<unsigned>(Slot)), 1u);
  EXPECT_EQ(S.GlobalWriteKinds.at(static_cast<unsigned>(Slot)),
            GlobalWriteKind::Ordered);
  EXPECT_EQ(S.BareReadGlobals.count(static_cast<unsigned>(Slot)), 1u);
}

TEST(EffectsTest, ArgMemMapsPerParameter) {
  // Parameter-granular argmem: `wrap` forwards only its second pointer to
  // the argmem native, so param 0 must stay out of the write set even
  // though the blanket ArgMemWrite flag is on.
  auto C = compileOk("extern void touch(ptr p);\n"
                     "#pragma commset effects(touch, argmem)\n"
                     "void wrap(ptr a, ptr b) { touch(b); }\n");
  const EffectSummary &S =
      C->effects().summaryFor(C->module().findFunction("wrap"));
  EXPECT_TRUE(S.ArgMemWrite);
  EXPECT_EQ(S.ArgWriteParams, (std::set<unsigned>{1}));
  EXPECT_EQ(S.ArgReadParams, (std::set<unsigned>{1}));
}

TEST(PtrOriginTest, FreshRootsDontAlias) {
  auto C = compileOk("extern ptr alloc(int n);\n"
                     "extern void use(ptr a, ptr b);\n"
                     "#pragma commset effects(alloc, malloc)\n"
                     "#pragma commset effects(use, argmem)\n"
                     "void f() {\n"
                     "  ptr a = alloc(1);\n"
                     "  ptr b = alloc(2);\n"
                     "  ptr c = a;\n"
                     "  use(a, b);\n"
                     "  use(c, b);\n"
                     "}\n");
  Function *F = C->module().findFunction("f");
  F->numberInstructions();
  PtrOrigins PO = PtrOrigins::compute(*F, C->effects());
  // Find the two `use` calls; their first args alias (a/c), first vs
  // second arg never alias.
  std::vector<Instruction *> Uses;
  for (Instruction *Instr : F->instructions())
    if (Instr->op() == Opcode::CallNative &&
        Instr->Native->Name == "use")
      Uses.push_back(Instr);
  ASSERT_EQ(Uses.size(), 2u);
  auto A0 = PO.classOf(Uses[0]->Operands[0]);
  auto B0 = PO.classOf(Uses[0]->Operands[1]);
  auto C0 = PO.classOf(Uses[1]->Operands[0]);
  EXPECT_TRUE(PtrOrigins::mayAlias(A0, C0));
  EXPECT_FALSE(PtrOrigins::mayAlias(A0, B0));
}

//===----------------------------------------------------------------------===//
// PDG + Algorithm 1 on the md5sum running example
//===----------------------------------------------------------------------===//

TEST(PDGTest, Md5sumUnannotatedHasCarriedCycle) {
  // Strip the pragmas (keep effects): without COMMSET the loop has carried
  // memory dependences among the file operations.
  std::string Source = md5sumSource();
  // Remove commset decl/member/enable/namedarg/namedblock/predicate lines.
  std::string Filtered;
  for (const std::string &Line : splitString(Source, '\n')) {
    bool IsCommsetPragma =
        Line.find("#pragma commset") != std::string::npos &&
        Line.find("effects") == std::string::npos;
    if (!IsCommsetPragma)
      Filtered += Line + "\n";
  }
  auto C = compileOk(Filtered);
  auto T = analyzeOk(*C, "main_loop");
  unsigned CarriedMem = 0;
  for (const PDGEdge &E : T->G.Edges)
    if (E.Kind == DepKind::Memory && T->G.edgeCarried(E))
      ++CarriedMem;
  EXPECT_GT(CarriedMem, 0u);
}

TEST(PDGTest, Md5sumAnnotatedRelaxesAllCarriedCallDeps) {
  auto C = compileOk(md5sumSource());
  auto T = analyzeOk(*C, "main_loop");
  EXPECT_GT(T->Stats.UcoEdges, 0u);
  // After Algorithm 1, no carried memory dependence between calls remains.
  for (const PDGEdge &E : T->G.Edges) {
    if (E.Kind != DepKind::Memory)
      continue;
    Instruction *Src = T->G.Nodes[E.Src];
    Instruction *Dst = T->G.Nodes[E.Dst];
    if (!Src->isCall() || !Dst->isCall())
      continue;
    EXPECT_FALSE(T->G.edgeCarried(E))
        << "carried edge survived between " << printInstruction(*Src)
        << " and " << printInstruction(*Dst) << "\n"
        << T->G.dump();
  }
}

TEST(PDGTest, Md5sumOnlyInductionCarriesRemain) {
  auto C = compileOk(md5sumSource());
  auto T = analyzeOk(*C, "main_loop");
  unsigned Induction = T->L->Induction.Local;
  for (const PDGEdge &E : T->G.Edges) {
    if (!T->G.edgeCarried(E))
      continue;
    EXPECT_EQ(E.Kind, DepKind::LocalFlow) << T->G.dump();
    EXPECT_EQ(E.LocalId, Induction) << T->G.dump();
  }
}

TEST(PDGTest, DeterministicVariantKeepsPrintSelfDep) {
  // Omitting SELF on the print block (paper §2: deterministic digests)
  // leaves a carried self dependence, blocking DOALL but allowing a
  // sequential PS-DSWP output stage.
  std::string Source = md5sumSource();
  size_t Pos = Source.rfind("#pragma commset member(SELF, FSET(i))");
  ASSERT_NE(Pos, std::string::npos);
  Source.replace(Pos, strlen("#pragma commset member(SELF, FSET(i))"),
                 "#pragma commset member(FSET(i))");
  auto C = compileOk(Source);
  auto T = analyzeOk(*C, "main_loop");
  unsigned CarriedCallDeps = 0;
  for (const PDGEdge &E : T->G.Edges)
    if (E.Kind == DepKind::Memory && T->G.edgeCarried(E))
      ++CarriedCallDeps;
  EXPECT_GT(CarriedCallDeps, 0u);
}

TEST(PDGTest, IcoAnnotationsAppear) {
  auto C = compileOk(md5sumSource());
  auto T = analyzeOk(*C, "main_loop");
  // Forward carried edges between distinct members (e.g. open -> close on
  // later iteration) are ico; backward ones uco.
  EXPECT_GT(T->Stats.IcoEdges, 0u);
  EXPECT_GT(T->Stats.UcoEdges, 0u);
}

TEST(SCCTest, ControlSCCFormsAndTopoOrderValid) {
  auto C = compileOk(md5sumSource());
  auto T = analyzeOk(*C, "main_loop");
  const SCCResult &S = T->Sccs;
  ASSERT_GT(S.numComponents(), 1u);
  // Topological order: every DAG edge goes forward.
  std::vector<unsigned> Position(S.numComponents());
  for (unsigned I = 0; I < S.TopoOrder.size(); ++I)
    Position[S.TopoOrder[I]] = I;
  for (unsigned From = 0; From < S.numComponents(); ++From)
    for (unsigned To : S.DagSuccs[From])
      EXPECT_LT(Position[From], Position[To]);
  // The induction update belongs to an SCC with a carried dependence.
  int UpdateNode = T->G.indexOf(T->L->Induction.Update);
  ASSERT_GE(UpdateNode, 0);
  EXPECT_TRUE(S.HasCarried[S.ComponentOf[UpdateNode]]);
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

TEST(WellFormedTest, MemberCallingMemberRejected) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(
      "#pragma commset decl(S)\n"
      "extern void touch();\n"
      "#pragma commset member(S)\n"
      "void a() { touch(); }\n"
      "#pragma commset member(S)\n"
      "void b() { a(); }\n",
      Diags);
  EXPECT_EQ(C.get(), nullptr);
  EXPECT_TRUE(Diags.contains("transitively calls member"));
}

TEST(WellFormedTest, CommSetGraphCycleRejected) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(
      "#pragma commset decl(S)\n"
      "#pragma commset decl(T)\n"
      "extern void touch();\n"
      "#pragma commset member(T)\n"
      "void a() { touch(); }\n"
      "#pragma commset member(S)\n"
      "void b() { a(); }\n"
      "#pragma commset member(T)\n"
      "void c() { d(); }\n"
      "#pragma commset member(S)\n"
      "void d() { touch(); }\n",
      Diags);
  EXPECT_EQ(C.get(), nullptr);
  EXPECT_TRUE(Diags.contains("cycle"));
}

TEST(WellFormedTest, DisjointSetsAccepted) {
  auto C = compileOk("#pragma commset decl(S)\n"
                     "#pragma commset decl(T)\n"
                     "extern void touch();\n"
                     "#pragma commset member(T)\n"
                     "void a() { touch(); }\n"
                     "#pragma commset member(S)\n"
                     "void b() { a(); }\n");
  EXPECT_NE(C.get(), nullptr);
}

} // namespace
