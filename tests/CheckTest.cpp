//===- CheckTest.cpp - CommCheck harness tests ----------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Covers the CommCheck tentpole: the seeded program generator (determinism,
// front-end acceptance), the differential oracle, the controlled scheduler
// (determinism, replayability), and the happens-before checker (a known
// racy sync-disabled program is flagged; the sync-enabled run is clean).
//
//===----------------------------------------------------------------------===//

#include "commset/Check/CommCheck.h"
#include "commset/Check/CheckRuntime.h"
#include "commset/Check/Oracle.h"
#include "commset/Check/ProgramGen.h"
#include "commset/Check/SchedulePlatform.h"
#include "commset/Driver/Runner.h"
#include "commset/Exec/ThreadedPlatform.h"

#include <gtest/gtest.h>

using namespace commset;
using namespace commset::check;

namespace {

//===----------------------------------------------------------------------===//
// Program generator
//===----------------------------------------------------------------------===//

TEST(ProgramGenTest, SameSeedSameProgram) {
  for (uint64_t Seed : {1ULL, 7ULL, 99ULL, 123456789ULL}) {
    GeneratedProgram A = generateProgram(Seed);
    GeneratedProgram B = generateProgram(Seed);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Shape, B.Shape);
    EXPECT_EQ(A.TripCount, B.TripCount);
    EXPECT_EQ(A.Output, B.Output);
    EXPECT_EQ(A.LibSafe, B.LibSafe);
  }
}

TEST(ProgramGenTest, DistinctSeedsDiffer) {
  // Not a hard guarantee, but 1 and 2 colliding would mean the seed is
  // not actually feeding the draws.
  EXPECT_NE(generateProgram(1).Source, generateProgram(2).Source);
}

TEST(ProgramGenTest, GeneratedProgramsCompileAndAnalyze) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    GeneratedProgram P = generateProgram(Seed);
    DiagnosticEngine Diags;
    auto C = Compilation::fromSource(P.Source, Diags);
    ASSERT_NE(C, nullptr) << "seed " << Seed << ":\n"
                          << Diags.str() << "\n"
                          << P.Source;
    auto T = C->analyzeLoop("main_loop", Diags);
    ASSERT_NE(T, nullptr) << "seed " << Seed << ":\n" << Diags.str();
  }
}

//===----------------------------------------------------------------------===//
// Differential oracle + harness
//===----------------------------------------------------------------------===//

TEST(OracleTest, SmokeIterationsPass) {
  CommCheckOptions Opts;
  Opts.Seed = 1;
  Opts.Iterations = 6;
  Opts.DumpDir.clear(); // No artifacts from a passing run anyway.
  CommCheckSummary Sum = runCommCheck(Opts);
  EXPECT_EQ(Sum.Failures, 0u) << Sum.FirstFailure;
  EXPECT_EQ(Sum.Iterations, 6u);
  EXPECT_GT(Sum.PlansRun, 0u);
  EXPECT_GT(Sum.SchedulesRun, 0u);
  EXPECT_EQ(Sum.RacesReported, 0u);
}

TEST(OracleTest, ArtifactNamesReplaySeed) {
  GeneratedProgram P = generateProgram(4242);
  TrialResult Trial;
  Trial.Ok = false;
  Trial.Report = "synthetic failure";
  std::string Artifact = renderArtifact(P, Trial);
  EXPECT_NE(Artifact.find("commcheck --seed 4242 --iters 1"),
            std::string::npos);
  EXPECT_NE(Artifact.find(P.Source), std::string::npos);
  EXPECT_NE(Artifact.find("synthetic failure"), std::string::npos);
}

TEST(OracleTest, ArtifactRecordsActiveSchedPolicies) {
  GeneratedProgram P = generateProgram(4242);
  TrialResult Trial;
  Trial.Ok = false;
  Trial.Report = "synthetic failure";

  // Default rotation: all active policies listed, replay command unpinned.
  Trial.SchedPolicies = {SchedPolicy::Static, SchedPolicy::Dynamic,
                         SchedPolicy::Guided};
  std::string Artifact = renderArtifact(P, Trial);
  EXPECT_NE(Artifact.find("sched policies: static dynamic guided"),
            std::string::npos);
  EXPECT_EQ(Artifact.find("--sched"), std::string::npos);

  // A single policy (commcheck --sched dynamic) is replayable exactly, so
  // the replay command pins it.
  Trial.SchedPolicies = {SchedPolicy::Dynamic};
  Artifact = renderArtifact(P, Trial);
  EXPECT_NE(
      Artifact.find("commcheck --seed 4242 --iters 1 --sched dynamic"),
      std::string::npos);
  EXPECT_NE(Artifact.find("sched policies: dynamic"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Controlled scheduler + happens-before checker
//===----------------------------------------------------------------------===//

// A deliberately shared counter: bump() is a SELF-set member, so DOALL
// applies and the *sync engine* is what makes it correct. Disabling it
// (SyncMode::None) yields a known-racy execution the happens-before
// checker must flag.
const char *racyCounterSource() {
  return R"(
int counter = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void bump(int v) { counter = counter + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    int t = work(i);
    bump(t);
  }
  return counter;
}
)";
}

struct RacyFixture {
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  CheckState State;
  NativeRegistry Natives;
  DiagnosticEngine Diags;

  bool init(SyncMode Sync, ParallelPlan &PlanOut) {
    C = Compilation::fromSource(racyCounterSource(), Diags);
    if (!C) {
      ADD_FAILURE() << Diags.str();
      return false;
    }
    T = C->analyzeLoop("main_loop", Diags);
    if (!T) {
      ADD_FAILURE() << Diags.str();
      return false;
    }
    registerCheckNatives(Natives, State);
    PlanOptions PO;
    PO.NumThreads = 2;
    PO.Sync = Sync;
    auto Schemes = buildAllSchemes(*C, *T, PO);
    for (const SchemeReport &R : Schemes)
      if (R.Kind == Strategy::Doall && R.Applicable && R.Plan) {
        PlanOut = *R.Plan;
        return true;
      }
    ADD_FAILURE() << "DOALL did not apply to the racy counter program";
    return false;
  }

  int64_t run(const ParallelPlan &Plan, ExecPlatform &Platform) {
    std::vector<RtValue> Globals = makeGlobalImage(C->module());
    RtValue R = runFunctionWithPlan(C->module(), Natives, Globals.data(),
                                    Plan, T->F, {RtValue::ofInt(16)},
                                    Platform);
    return R.I;
  }
};

TEST(HappensBeforeTest, SyncDisabledRacyProgramIsFlagged) {
  ParallelPlan Plan;
  RacyFixture Fx;
  if (!Fx.init(SyncMode::None, Plan))
    return;
  SchedulePlatform Platform(2, SchedulePolicy::roundRobin(1),
                            &Fx.C->module());
  Fx.run(Plan, Platform);
  ASSERT_NE(Platform.checker(), nullptr);
  const auto &Races = Platform.checker()->races();
  ASSERT_FALSE(Races.empty())
      << "sync-disabled shared counter must race";
  EXPECT_EQ(Races.front().Global, "counter");
}

TEST(HappensBeforeTest, SyncEnabledRunIsCleanAndCorrect) {
  ParallelPlan Plan;
  RacyFixture Fx;
  if (!Fx.init(SyncMode::Mutex, Plan))
    return;

  // Sequential reference for the final counter value.
  ParallelPlan Seq;
  Seq.Kind = Strategy::Sequential;
  Seq.F = Fx.T->F;
  Seq.L = Fx.T->L;
  Seq.NumThreads = 1;
  int64_t Expected;
  {
    ThreadedPlatform P1(1);
    Expected = Fx.run(Seq, P1);
  }

  SchedulePlatform Platform(2, SchedulePolicy::roundRobin(1),
                            &Fx.C->module());
  int64_t Got = Fx.run(Plan, Platform);
  ASSERT_NE(Platform.checker(), nullptr);
  EXPECT_TRUE(Platform.checker()->races().empty())
      << Platform.checker()->races().front().describe();
  EXPECT_EQ(Got, Expected);
}

TEST(SchedulePlatformTest, SameSeedSameSchedule) {
  auto runOnce = [](uint64_t Seed, std::vector<unsigned> &LogOut,
                    int64_t &Result) {
    ParallelPlan Plan;
    RacyFixture Fx;
    if (!Fx.init(SyncMode::Mutex, Plan))
      return;
    SchedulePlatform Platform(2, SchedulePolicy::random(Seed),
                              &Fx.C->module());
    Result = Fx.run(Plan, Platform);
    LogOut = Platform.decisionLog();
  };
  std::vector<unsigned> LogA, LogB;
  int64_t ResA = 0, ResB = 0;
  runOnce(77, LogA, ResA);
  runOnce(77, LogB, ResB);
  EXPECT_EQ(LogA, LogB) << "same policy seed must replay the schedule";
  EXPECT_EQ(ResA, ResB);
  EXPECT_FALSE(LogA.empty());

  std::vector<unsigned> LogC;
  int64_t ResC = 0;
  runOnce(78, LogC, ResC);
  EXPECT_EQ(ResA, ResC) << "result must not depend on the schedule";
}

TEST(SchedulePlatformTest, RoundRobinAlternatesThreads) {
  ParallelPlan Plan;
  RacyFixture Fx;
  if (!Fx.init(SyncMode::Mutex, Plan))
    return;
  SchedulePlatform Platform(2, SchedulePolicy::roundRobin(1),
                            &Fx.C->module());
  Fx.run(Plan, Platform);
  const auto &Log = Platform.decisionLog();
  ASSERT_FALSE(Log.empty());
  bool Saw1 = false;
  for (unsigned T : Log)
    if (T == 1)
      Saw1 = true;
  EXPECT_TRUE(Saw1) << "interval-1 round robin must hand off to thread 1";
}

} // namespace
