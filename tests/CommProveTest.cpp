//===- CommProveTest.cpp - Symbolic commutativity prover tests ------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Pins the CommProve verdict table on the algebraic shapes the prover is
// specified to decide (DESIGN.md §9): add-reductions and min/max reductions
// prove commutative; affine-but-order-sensitive updates refute with a
// witness the REAL interpreter validates AND the controlled-schedule
// explorer reproduces; budget exhaustion and unmodeled constructs surface
// as Unknown, never as a silent pass. Also pins the lint surface: CL060
// carries the witness, CL061 downgrades the pair's CL020/CL021, CL063
// suggests pragmas for unannotated provable pairs, and proof tokens land
// on relaxed PDG edges.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/CommProve.h"
#include "commset/Check/ProveReplay.h"

#include <gtest/gtest.h>

using namespace commset;

namespace {

/// Compiles \p Source and returns the Compilation (nullptr on error).
std::unique_ptr<Compilation> compileSrc(const std::string &Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<Compilation> C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C, nullptr) << Diags.str();
  return C;
}

const Function *fn(const Compilation &C, const std::string &Name) {
  for (const auto &F : C.module().Functions)
    if (F->Name == Name)
      return F.get();
  ADD_FAILURE() << "no function named " << Name;
  return nullptr;
}

PairProof provePair(const Compilation &C, const std::string &First,
                    const std::string &Second, ProveOptions Opts = {}) {
  const Function *F = fn(C, First);
  const Function *S = fn(C, Second);
  if (!F || !S)
    return {};
  return proveFunctionPair(C, *F, *S, Opts);
}

TEST(CommProveTest, AddReductionSelfPairProves) {
  auto C = compileSrc(R"(
int acc = 0;
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { add(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  PairProof P = provePair(*C, "add", "add");
  EXPECT_EQ(P.Verdict, ProveVerdict::Proven) << P.Detail;
  EXPECT_FALSE(P.Witness.has_value());
}

TEST(CommProveTest, ScaledAccumulateRefutesWithValidatedWitness) {
  // (g*3 + a)*3 + b != (g*3 + b)*3 + a whenever a != b: the polynomial
  // normal form separates the orders, and witness search must find concrete
  // values on which the real interpreter diverges bit-for-bit.
  auto C = compileSrc(R"(
int acc = 1;
void scale_acc(int v) { acc = acc * 3 + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { scale_acc(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  PairProof P = provePair(*C, "scale_acc", "scale_acc");
  ASSERT_EQ(P.Verdict, ProveVerdict::Refuted) << P.Detail;
  ASSERT_TRUE(P.Witness.has_value());
  EXPECT_FALSE(P.Witness->Divergence.empty());
  // Witness carries one argument per call and renders readably.
  EXPECT_EQ(P.Witness->FirstArgs.size(), 1u);
  EXPECT_EQ(P.Witness->SecondArgs.size(), 1u);
  EXPECT_NE(proveWitnessStr(C->module(), P).find("scale_acc"),
            std::string::npos);
}

TEST(CommProveTest, MinReductionCompareSelectProves) {
  // `if (v < best) best = v;` is an overwrite the effect auditor must flag
  // (CL020) but the prover recognizes as Min — associative, commutative,
  // idempotent — and proves both orders equal.
  auto C = compileSrc(R"(
int best = 1000000;
void track_min(int v) { if (v < best) { best = v; } }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { track_min(i); }
  return best;
}
)");
  ASSERT_NE(C, nullptr);
  PairProof P = provePair(*C, "track_min", "track_min");
  EXPECT_EQ(P.Verdict, ProveVerdict::Proven) << P.Detail;
}

TEST(CommProveTest, DistinctGroupMembersOverDisjointStateProve) {
  auto C = compileSrc(R"(
int red = 0;
int blue = 0;
void add_red(int v) { red = red + v; }
void add_blue(int v) { blue = blue + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { add_red(i); add_blue(i); }
  return red + blue;
}
)");
  ASSERT_NE(C, nullptr);
  PairProof P = provePair(*C, "add_red", "add_blue");
  EXPECT_EQ(P.Verdict, ProveVerdict::Proven) << P.Detail;
}

TEST(CommProveTest, ReadWritePairRefutes) {
  // mirror_y reads the global bump_x writes: y's final value depends on
  // whether x was bumped first.
  auto C = compileSrc(R"(
int x = 0;
int y = 0;
void bump_x(int v) { x = x + v; }
void mirror_y(int v) { y = x + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { bump_x(i); mirror_y(i); }
  return x + y;
}
)");
  ASSERT_NE(C, nullptr);
  PairProof P = provePair(*C, "bump_x", "mirror_y");
  ASSERT_EQ(P.Verdict, ProveVerdict::Refuted) << P.Detail;
  ASSERT_TRUE(P.Witness.has_value());
}

TEST(CommProveTest, TinyStepBudgetYieldsUnknown) {
  auto C = compileSrc(R"(
int acc = 0;
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { add(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  ProveOptions Opts;
  Opts.StepBudget = 1; // Cannot even finish one body.
  PairProof P = provePair(*C, "add", "add", Opts);
  EXPECT_EQ(P.Verdict, ProveVerdict::Unknown);
  EXPECT_NE(P.Detail.find("budget"), std::string::npos) << P.Detail;
}

TEST(CommProveTest, WitnessReplaysUnderControlledScheduler) {
  auto C = compileSrc(R"(
int acc = 1;
#pragma commset member(SELF)
void scale_acc(int v) { acc = acc * 3 + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { scale_acc(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  PairProof P = provePair(*C, "scale_acc", "scale_acc");
  ASSERT_EQ(P.Verdict, ProveVerdict::Refuted) << P.Detail;
  check::ProveReplayResult R = check::replayProveWitness(*C, P);
  EXPECT_TRUE(R.Diverged) << R.Report;
  EXPECT_GE(R.SchedulesRun, 2u);
  std::string Artifact = check::renderProveArtifact(*C, P, R);
  EXPECT_NE(Artifact.find("proven-non-commutative"), std::string::npos);
  EXPECT_NE(Artifact.find("witness"), std::string::npos);
}

TEST(CommProveTest, RunCommProveRefutesAnnotatedSelfAndEmitsCL060) {
  auto C = compileSrc(R"(
int acc = 1;
#pragma commset member(SELF)
void scale_acc(int v) { acc = acc * 3 + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { scale_acc(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  ProveResult PR = runCommProve(*C, /*T=*/nullptr);
  EXPECT_EQ(PR.Refuted, 1u);
  bool SawCL060 = false;
  for (const LintDiagnostic &D : proveDiagnostics(*C, PR))
    if (D.Code == "CL060") {
      SawCL060 = true;
      EXPECT_EQ(D.Severity, LintSeverity::Error);
      EXPECT_NE(D.Message.find("witness"), std::string::npos) << D.Message;
    }
  EXPECT_TRUE(SawCL060);
}

TEST(CommProveTest, PredicatedSetIsNeverRefuted) {
  // A conditional commutativity claim cannot be refuted by an unconditional
  // witness: the refutation demotes to Unknown (CL062), witness dropped.
  auto C = compileSrc(R"(
int acc = 1;
#pragma commset decl(S, self)
#pragma commset predicate(S, (int a), (int b), a != b)
#pragma commset member(S(v))
void scale_acc(int v) { acc = acc * 3 + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { scale_acc(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  ProveResult PR = runCommProve(*C, /*T=*/nullptr);
  EXPECT_EQ(PR.Refuted, 0u);
  for (const PairProof &P : PR.Pairs) {
    EXPECT_NE(P.Verdict, ProveVerdict::Refuted);
    EXPECT_FALSE(P.Witness.has_value());
  }
}

TEST(CommProveTest, DowngradeRewritesMatchingCL020ToNote) {
  auto C = compileSrc(R"(
int best = 1000000;
#pragma commset member(SELF)
void track_min(int v) { if (v < best) { best = v; } }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { track_min(i); }
  return best;
}
)");
  ASSERT_NE(C, nullptr);
  ProveResult PR = runCommProve(*C, /*T=*/nullptr);
  ASSERT_EQ(PR.Proven, 1u);

  LintDiagnostic D;
  D.Code = "CL020";
  D.Severity = LintSeverity::Error;
  D.Message = "ordered self write";
  D.Subject = "track_min";
  D.Subject2 = "track_min";
  LintDiagnostic Other = D;
  Other.Subject = Other.Subject2 = "unrelated_fn";
  std::vector<LintDiagnostic> Diags = {D, Other};
  EXPECT_EQ(applyProveDowngrades(PR, Diags), 1u);
  EXPECT_EQ(Diags[0].Severity, LintSeverity::Note);
  EXPECT_NE(Diags[0].Message.find("CL061"), std::string::npos);
  EXPECT_EQ(Diags[1].Severity, LintSeverity::Error);
}

TEST(CommProveTest, UnannotatedProvablePairSuggestsCL063) {
  auto C = compileSrc(R"(
int tally = 0;
void add_red(int v) { tally = tally + v; }
void add_blue(int v) { tally = tally + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { add_red(i); add_blue(i + 1); }
  return tally;
}
)");
  ASSERT_NE(C, nullptr);
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("main_loop", Diags);
  ASSERT_NE(T, nullptr) << Diags.str();
  ProveResult PR = runCommProve(*C, T.get());
  EXPECT_GE(PR.Suggested, 1u);
  bool SawCL063 = false;
  for (const LintDiagnostic &D : proveDiagnostics(*C, PR))
    if (D.Code == "CL063") {
      SawCL063 = true;
      EXPECT_EQ(D.Severity, LintSeverity::Note);
      EXPECT_NE(D.Message.find("pragma"), std::string::npos) << D.Message;
    }
  EXPECT_TRUE(SawCL063);
}

TEST(CommProveTest, ProofTokensLandOnRelaxedEdges) {
  auto C = compileSrc(R"(
int acc = 0;
#pragma commset member(SELF)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) { add(i); }
  return acc;
}
)");
  ASSERT_NE(C, nullptr);
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("main_loop", Diags);
  ASSERT_NE(T, nullptr) << Diags.str();
  ProveResult PR = runCommProve(*C, T.get());
  ASSERT_GE(PR.Proven, 1u);
  unsigned Tokens = annotateProofTokens(T->G, PR);
  EXPECT_GE(Tokens, 1u);
  unsigned Marked = 0;
  for (const PDGEdge &E : T->G.Edges)
    if (E.ProvenCommutative) {
      ++Marked;
      EXPECT_NE(E.Comm, CommAnnotation::None);
    }
  EXPECT_EQ(Marked, Tokens);
}

} // namespace
