//===- CoreTest.cpp - COMMSET core pass unit tests ------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "commset/Core/CommSetRegistry.h"
#include "commset/Core/PredicateInterp.h"
#include "commset/Driver/Compilation.h"
#include "commset/Lang/Parser.h"

#include <gtest/gtest.h>

using namespace commset;

namespace {

//===----------------------------------------------------------------------===//
// Symbolic predicate interpreter
//===----------------------------------------------------------------------===//

/// Parses a standalone C expression by wrapping it in a predicate pragma.
ExprPtr parsePredicate(const std::string &Expr, Program &Storage) {
  DiagnosticEngine Diags;
  std::string Source = "#pragma commset decl(S)\n"
                       "#pragma commset predicate(S, (int i1, int k1), "
                       "(int i2, int k2), " +
                       Expr + ")\n";
  auto P = Parser::parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(P->Predicates.size(), 1u);
  Storage.Predicates = std::move(P->Predicates);
  return std::move(Storage.Predicates[0].Predicate);
}

struct PredCase {
  const char *Expr;
  bool Distinct; // i1 != i2 fact available.
  TriBool Expected;
};

class PredicateInterpTest : public ::testing::TestWithParam<PredCase> {};

TEST_P(PredicateInterpTest, Evaluates) {
  const PredCase &Case = GetParam();
  Program Storage;
  ExprPtr Pred = parsePredicate(Case.Expr, Storage);

  std::map<std::string, SymValue> Env;
  Env["i1"] = SymValue::affine(1);
  Env["i2"] = SymValue::affine(Case.Distinct ? 2 : 1);
  Env["k1"] = SymValue::opaque();
  Env["k2"] = SymValue::opaque();
  SymFacts Facts;
  if (Case.Distinct)
    Facts.Distinct.push_back({1, 2});

  EXPECT_EQ(evalPredicate(Pred.get(), Env, Facts), Case.Expected)
      << Case.Expr;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredicateInterpTest,
    ::testing::Values(
        // Distinct iterations: the Algorithm 1 assertion decides it.
        PredCase{"i1 != i2", true, TriBool::True},
        PredCase{"i1 == i2", true, TriBool::False},
        // Same iteration: both contexts bind the same variable.
        PredCase{"i1 != i2", false, TriBool::False},
        PredCase{"i1 == i2", false, TriBool::True},
        // Affine offsets: i1+c vs i2+c stays decidable; unequal offsets
        // with only a distinctness fact do not.
        PredCase{"i1 + 3 != i2 + 3", true, TriBool::True},
        PredCase{"i1 + 1 != i2", true, TriBool::Unknown},
        PredCase{"i1 + 1 != i2", false, TriBool::True},
        PredCase{"i1 - 2 == i2 - 2", false, TriBool::True},
        // Opaque terms poison only their own subterm.
        PredCase{"k1 != k2", true, TriBool::Unknown},
        PredCase{"i1 != i2 && k1 != k2", true, TriBool::Unknown},
        PredCase{"i1 == i2 && k1 != k2", true, TriBool::False},
        PredCase{"i1 != i2 || k1 != k2", true, TriBool::True},
        // Constants fold exactly.
        PredCase{"1 < 2", false, TriBool::True},
        PredCase{"3 * 4 == 12", false, TriBool::True},
        PredCase{"10 % 3 == 2", false, TriBool::False},
        PredCase{"!(i1 != i2)", true, TriBool::False},
        // Relational on distinct vars is not decidable from != alone.
        PredCase{"i1 < i2", true, TriBool::Unknown},
        PredCase{"i1 <= i1 + 1", false, TriBool::True}));

//===----------------------------------------------------------------------===//
// Registry semantics
//===----------------------------------------------------------------------===//

std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C.get(), nullptr) << Diags.str();
  return C;
}

TEST(RegistryTest, GroupVsSelfPairSemantics) {
  auto C = compileOk("#pragma commset decl(G)\n"
                     "#pragma commset decl(V, self)\n"
                     "#pragma commset member(G, V)\n"
                     "extern void a();\n"
                     "#pragma commset effects(a, reads(s), writes(s))\n"
                     "#pragma commset member(G, V)\n"
                     "extern void b();\n"
                     "#pragma commset effects(b, reads(s), writes(s))\n"
                     "void f() { a(); b(); }\n");
  const CommSetRegistry &R = C->registry();
  // Distinct members commute through the group set only.
  auto AB = R.commutingSets("a", "b");
  ASSERT_EQ(AB.size(), 1u);
  EXPECT_EQ(R.set(AB[0]).Name, "G");
  // A member commutes with itself through the self set only.
  auto AA = R.commutingSets("a", "a");
  ASSERT_EQ(AA.size(), 1u);
  EXPECT_EQ(R.set(AA[0]).Name, "V");
}

TEST(RegistryTest, ImplicitSelfSetsAreSingletons) {
  auto C = compileOk("#pragma commset member(SELF)\n"
                     "extern void a();\n"
                     "#pragma commset effects(a, reads(s), writes(s))\n"
                     "#pragma commset member(SELF)\n"
                     "extern void b();\n"
                     "#pragma commset effects(b, reads(s), writes(s))\n"
                     "void f() { a(); b(); }\n");
  const CommSetRegistry &R = C->registry();
  EXPECT_FALSE(R.commutingSets("a", "a").empty());
  EXPECT_FALSE(R.commutingSets("b", "b").empty());
  // Separate SELF annotations never make two functions commute.
  EXPECT_TRUE(R.commutingSets("a", "b").empty());
}

TEST(RegistryTest, RanksFollowDeclarationOrder) {
  auto C = compileOk("#pragma commset decl(X)\n"
                     "#pragma commset decl(Y)\n"
                     "#pragma commset member(Y, X)\n"
                     "extern void a();\n"
                     "#pragma commset effects(a, reads(s), writes(s))\n"
                     "void f() { a(); }\n");
  const CommSetRegistry &R = C->registry();
  int X = R.findSet("X");
  int Y = R.findSet("Y");
  ASSERT_GE(X, 0);
  ASSERT_GE(Y, 0);
  EXPECT_LT(R.set(X).Rank, R.set(Y).Rank);
}

//===----------------------------------------------------------------------===//
// Copy-chain tracing in Algorithm 1 (predicate actuals through locals)
//===----------------------------------------------------------------------===//

TEST(DepAnalysisTest, PredicateActualThroughCopyChain) {
  // `seg` is a copy of the induction variable; predication on it must
  // still prove cross-iteration commutativity (S is a predicated *self*
  // set, like the paper's SSET, so it covers the block's self-pairs).
  auto C = compileOk("#pragma commset decl(S, self)\n"
                     "#pragma commset predicate(S, (int a), (int b), "
                     "a != b)\n"
                     "extern void op(int k);\n"
                     "#pragma commset effects(op, reads(c), writes(c))\n"
                     "void main_loop(int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    int seg = i;\n"
                     "    int shifted = seg + 2;\n"
                     "    #pragma commset member(S(shifted))\n"
                     "    { op(shifted); }\n"
                     "  }\n"
                     "}\n");
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("main_loop", Diags);
  ASSERT_NE(T.get(), nullptr) << Diags.str();
  EXPECT_GT(T->Stats.UcoEdges, 0u)
      << "copy chain i -> seg -> shifted must reach the induction variable";
  for (const PDGEdge &E : T->G.Edges)
    if (E.Kind == DepKind::Memory)
      EXPECT_FALSE(T->G.edgeCarried(E));
}

TEST(DepAnalysisTest, MultiplyDefinedCopyStaysOpaque) {
  // `key` has two reaching definitions; the chain must NOT be traced and
  // the dependence must survive.
  auto C = compileOk("#pragma commset decl(S, self)\n"
                     "#pragma commset predicate(S, (int a), (int b), "
                     "a != b)\n"
                     "extern void op(int k);\n"
                     "#pragma commset effects(op, reads(c), writes(c))\n"
                     "extern int coin(int i);\n"
                     "#pragma commset effects(coin, pure)\n"
                     "void main_loop(int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    int key = i;\n"
                     "    if (coin(i) > 0) {\n"
                     "      key = 7;\n"
                     "    }\n"
                     "    #pragma commset member(S(key))\n"
                     "    { op(key); }\n"
                     "  }\n"
                     "}\n");
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("main_loop", Diags);
  ASSERT_NE(T.get(), nullptr) << Diags.str();
  bool CarriedSurvives = false;
  for (const PDGEdge &E : T->G.Edges)
    if (E.Kind == DepKind::Memory && T->G.edgeCarried(E))
      CarriedSurvives = true;
  EXPECT_TRUE(CarriedSurvives)
      << "key may be 7 on two different iterations; the proof must fail";
}

} // namespace
