//===- ExecTest.cpp - Interpreter and parallel executor tests -------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Exec/Interpreter.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Exec/ThreadedPlatform.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

using namespace commset;

namespace {

std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C.get(), nullptr) << Diags.str();
  return C;
}

//===----------------------------------------------------------------------===//
// Sequential interpreter
//===----------------------------------------------------------------------===//

RtValue runSeq(Compilation &C, const NativeRegistry &Natives,
               const std::string &Fn, std::vector<RtValue> Args) {
  auto Globals = makeGlobalImage(C.module());
  Interpreter Interp(C.module(), Natives, Globals.data());
  Function *F = C.module().findFunction(Fn);
  EXPECT_NE(F, nullptr);
  return Interp.call(F, Args);
}

TEST(InterpTest, Arithmetic) {
  auto C = compileOk("int f(int a, int b) { return (a + b) * 3 - a % b; }");
  NativeRegistry Natives;
  RtValue R = runSeq(*C, Natives, "f", {RtValue::ofInt(7), RtValue::ofInt(4)});
  EXPECT_EQ(R.I, (7 + 4) * 3 - 7 % 4);
}

TEST(InterpTest, FloatPromotion) {
  auto C = compileOk("double f(int a) { return a / 2 + 0.5; }");
  NativeRegistry Natives;
  RtValue R = runSeq(*C, Natives, "f", {RtValue::ofInt(7)});
  EXPECT_DOUBLE_EQ(R.D, 3.5);
}

TEST(InterpTest, LoopsAndCalls) {
  auto C = compileOk("int square(int x) { return x * x; }\n"
                     "int f(int n) {\n"
                     "  int sum = 0;\n"
                     "  for (int i = 1; i <= n; i++) sum += square(i);\n"
                     "  return sum;\n"
                     "}\n");
  NativeRegistry Natives;
  RtValue R = runSeq(*C, Natives, "f", {RtValue::ofInt(5)});
  EXPECT_EQ(R.I, 1 + 4 + 9 + 16 + 25);
}

TEST(InterpTest, ShortCircuitSkipsCalls) {
  auto C = compileOk("extern int probe(int x);\n"
                     "int f(int a) { return a > 10 && probe(a); }");
  int Calls = 0;
  NativeRegistry Natives;
  Natives.add("probe", [&](const RtValue *Args, unsigned) {
    ++Calls;
    return RtValue::ofInt(1);
  });
  RtValue R = runSeq(*C, Natives, "f", {RtValue::ofInt(3)});
  EXPECT_EQ(R.I, 0);
  EXPECT_EQ(Calls, 0) << "RHS must not evaluate when LHS is false";
}

TEST(InterpTest, GlobalsPersistAcrossCalls) {
  auto C = compileOk("int g = 10;\n"
                     "void bump() { g = g + 1; }\n"
                     "int f() { bump(); bump(); return g; }\n");
  NativeRegistry Natives;
  RtValue R = runSeq(*C, Natives, "f", {});
  EXPECT_EQ(R.I, 12);
}

TEST(InterpTest, StringLiteralToNative) {
  auto C = compileOk("extern void log_msg(ptr s);\n"
                     "void f() { log_msg(\"hello\"); }\n");
  std::string Got;
  NativeRegistry Natives;
  Natives.add("log_msg", [&](const RtValue *Args, unsigned) {
    Got = static_cast<const char *>(Args[0].P);
    return RtValue();
  });
  runSeq(*C, Natives, "f", {});
  EXPECT_EQ(Got, "hello");
}

TEST(InterpTest, WhileBreakContinue) {
  auto C = compileOk("int f(int n) {\n"
                     "  int sum = 0;\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    if (i % 2 == 0) continue;\n"
                     "    if (i > 6) break;\n"
                     "    sum += i;\n"
                     "  }\n"
                     "  return sum;\n"
                     "}\n");
  NativeRegistry Natives;
  RtValue R = runSeq(*C, Natives, "f", {RtValue::ofInt(100)});
  EXPECT_EQ(R.I, 1 + 3 + 5);
}

//===----------------------------------------------------------------------===//
// Parallel execution harness
//===----------------------------------------------------------------------===//

/// Thread-safe recorder used as the observable side effect of toy loops.
struct Recorder {
  std::mutex M;
  std::vector<std::pair<int64_t, int64_t>> Entries;

  void add(int64_t I, int64_t V) {
    std::lock_guard<std::mutex> Guard(M);
    Entries.push_back({I, V});
  }
};

/// Toy with record in a SELF set (out-of-order output permitted -> DOALL).
const char *toySource(bool RecordSelf) {
  static std::string WithSelf = std::string("extern int work(int x);\n") +
                                "#pragma commset member(SELF)\n"
                                "extern void record(int i, int v);\n"
                                "#pragma commset effects(work, pure)\n"
                                "#pragma commset effects(record, "
                                "reads(out), writes(out))\n"
                                "void run(int n) {\n"
                                "  for (int i = 0; i < n; i++) {\n"
                                "    record(i, work(i));\n"
                                "  }\n"
                                "}\n";
  static std::string NoSelf = std::string("extern int work(int x);\n") +
                              "extern void record(int i, int v);\n"
                              "#pragma commset effects(work, pure)\n"
                              "#pragma commset effects(record, "
                              "reads(out), writes(out))\n"
                              "void run(int n) {\n"
                              "  for (int i = 0; i < n; i++) {\n"
                              "    record(i, work(i));\n"
                              "  }\n"
                              "}\n";
  return RecordSelf ? WithSelf.c_str() : NoSelf.c_str();
}

NativeRegistry makeToyNatives(Recorder &Rec) {
  NativeRegistry Natives;
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) {
        return RtValue::ofInt(Args[0].I * Args[0].I + 1);
      },
      /*FixedCostNs=*/20000);
  Natives.add(
      "record",
      [&Rec](const RtValue *Args, unsigned) {
        Rec.add(Args[0].I, Args[1].I);
        return RtValue();
      },
      /*FixedCostNs=*/400);
  return Natives;
}

struct ToyRun {
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  std::vector<SchemeReport> Schemes;
};

ToyRun analyzeToy(bool RecordSelf, unsigned Threads, SyncMode Sync) {
  ToyRun R;
  R.C = compileOk(toySource(RecordSelf));
  if (!R.C)
    return R;
  DiagnosticEngine Diags;
  R.T = R.C->analyzeLoop("run", Diags);
  EXPECT_NE(R.T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = Sync;
  Opts.NativeCostHints = {{"work", 20000.0}, {"record", 400.0}};
  R.Schemes = buildAllSchemes(*R.C, *R.T, Opts);
  return R;
}

const SchemeReport *findScheme(const std::vector<SchemeReport> &Schemes,
                               Strategy Kind) {
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Kind)
      return &S;
  return nullptr;
}

void verifyCompleteness(const Recorder &Rec, int64_t N) {
  ASSERT_EQ(Rec.Entries.size(), static_cast<size_t>(N));
  std::vector<char> Seen(N, 0);
  for (auto [I, V] : Rec.Entries) {
    ASSERT_GE(I, 0);
    ASSERT_LT(I, N);
    EXPECT_FALSE(Seen[I]) << "duplicate iteration " << I;
    Seen[I] = 1;
    EXPECT_EQ(V, I * I + 1) << "wrong payload for iteration " << I;
  }
}

//===----------------------------------------------------------------------===//
// DOALL
//===----------------------------------------------------------------------===//

TEST(DoallExecTest, AppliesOnlyWithSelfAnnotation) {
  auto WithSelf = analyzeToy(true, 4, SyncMode::Mutex);
  auto *Doall = findScheme(WithSelf.Schemes, Strategy::Doall);
  ASSERT_NE(Doall, nullptr);
  EXPECT_TRUE(Doall->Applicable) << Doall->WhyNot;

  auto NoSelf = analyzeToy(false, 4, SyncMode::Mutex);
  auto *NoDoall = findScheme(NoSelf.Schemes, Strategy::Doall);
  ASSERT_NE(NoDoall, nullptr);
  EXPECT_FALSE(NoDoall->Applicable)
      << "without SELF the record self-dependence must block DOALL";
  EXPECT_NE(NoDoall->WhyNot.find("loop-carried"), std::string::npos)
      << NoDoall->WhyNot;
}

TEST(DoallExecTest, ThreadedCompleteAndCorrect) {
  constexpr int64_t N = 200;
  auto Toy = analyzeToy(true, 4, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  Recorder Rec;
  NativeRegistry Natives = makeToyNatives(Rec);
  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  RunOutcome Out = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives,
                             Config);
  EXPECT_EQ(Out.Iterations, static_cast<uint64_t>(N));
  verifyCompleteness(Rec, N);
}

TEST(DoallExecTest, SimulatedCompleteAndSpeedsUp) {
  constexpr int64_t N = 256;
  auto Toy = analyzeToy(true, 8, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  Recorder RecSeq;
  NativeRegistry NativesSeq = makeToyNatives(RecSeq);
  RunConfig SeqConfig;
  SeqConfig.Simulate = true;
  RunOutcome Seq = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                             NativesSeq, SeqConfig);

  Recorder RecPar;
  NativeRegistry NativesPar = makeToyNatives(RecPar);
  RunConfig ParConfig;
  ParConfig.Plan = &*Doall->Plan;
  ParConfig.Simulate = true;
  RunOutcome Par = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                             NativesPar, ParConfig);

  verifyCompleteness(RecSeq, N);
  verifyCompleteness(RecPar, N);
  ASSERT_GT(Par.VirtualNs, 0u);
  double Speedup = static_cast<double>(Seq.VirtualNs) / Par.VirtualNs;
  EXPECT_GT(Speedup, 5.0) << "8-thread DOALL on compute-bound work should "
                             "approach linear speedup, got "
                          << Speedup;
  EXPECT_LT(Speedup, 8.5);
}

TEST(DoallExecTest, InductionFinalValue) {
  auto C = compileOk("#pragma commset member(SELF)\n"
                     "extern void touch();\n"
                     "#pragma commset effects(touch, reads(t), writes(t))\n"
                     "int run(int n) {\n"
                     "  int i;\n"
                     "  for (i = 0; i < n; i += 3) {\n"
                     "    touch();\n"
                     "  }\n"
                     "  return i;\n"
                     "}\n");
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("run", Diags);
  ASSERT_NE(T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = 4;
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  auto *Doall = findScheme(Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  NativeRegistry Natives;
  Natives.add("touch", [](const RtValue *, unsigned) { return RtValue(); });
  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  RunOutcome Out =
      runScheme(*C, T->F, {RtValue::ofInt(100)}, Natives, Config);
  // Sequential semantics: i ends at the first multiple of 3 >= 100.
  EXPECT_EQ(Out.Result.I, 102);
  EXPECT_EQ(Out.Iterations, 34u);
}

//===----------------------------------------------------------------------===//
// Iteration scheduling policies
//===----------------------------------------------------------------------===//

TEST(SchedPolicyTest, AllPoliciesCompleteOnThreadsAndSim) {
  // The same DOALL plan under static | dynamic | guided must execute every
  // iteration exactly once with the right payload, on real threads (work
  // stealing live) and under the simulator (chunk-claim gating live).
  constexpr int64_t N = 200;
  auto Toy = analyzeToy(true, 4, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  for (SchedPolicy P :
       {SchedPolicy::Static, SchedPolicy::Dynamic, SchedPolicy::Guided}) {
    ParallelPlan Plan = *Doall->Plan;
    Plan.Sched = P;
    for (bool Simulate : {false, true}) {
      Recorder Rec;
      NativeRegistry Natives = makeToyNatives(Rec);
      RunConfig Config;
      Config.Plan = &Plan;
      Config.Simulate = Simulate;
      RunOutcome Out = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                                 Natives, Config);
      EXPECT_EQ(Out.Status, RunStatus::Ok)
          << schedPolicyName(P) << ": " << Out.Diagnostic;
      EXPECT_EQ(Out.Iterations, static_cast<uint64_t>(N))
          << schedPolicyName(P);
      verifyCompleteness(Rec, N);
    }
  }
}

TEST(SchedPolicyTest, SimulatedDynamicSchedulingIsDeterministic) {
  // Chunk boundaries are a pure function of the claim counter and claims
  // are gated by virtual time, so repeated simulated runs of a dynamic
  // policy must report the *identical* virtual duration — host scheduling
  // must not leak into the model.
  constexpr int64_t N = 128;
  auto Toy = analyzeToy(true, 8, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  for (SchedPolicy P : {SchedPolicy::Dynamic, SchedPolicy::Guided}) {
    ParallelPlan Plan = *Doall->Plan;
    Plan.Sched = P;
    uint64_t First = 0;
    for (int Rep = 0; Rep < 3; ++Rep) {
      Recorder Rec;
      NativeRegistry Natives = makeToyNatives(Rec);
      RunConfig Config;
      Config.Plan = &Plan;
      Config.Simulate = true;
      RunOutcome Out = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                                 Natives, Config);
      ASSERT_EQ(Out.Status, RunStatus::Ok) << Out.Diagnostic;
      ASSERT_GT(Out.VirtualNs, 0u);
      if (Rep == 0)
        First = Out.VirtualNs;
      else
        EXPECT_EQ(Out.VirtualNs, First)
            << schedPolicyName(P) << " rep " << Rep
            << ": virtual time must not depend on host timing";
    }
  }
}

TEST(SchedPolicyTest, PipelinePoliciesPreserveSequentialStageOrder) {
  // PS-DSWP replica routing is a pure function (schedReplicaOf) shared by
  // producers and consumers, so any policy keeps the sequential stage in
  // iteration order — the paper's deterministic-output guarantee.
  constexpr int64_t N = 120;
  auto Toy = analyzeToy(false, 4, SyncMode::Mutex);
  auto *Ps = findScheme(Toy.Schemes, Strategy::PsDswp);
  ASSERT_TRUE(Ps && Ps->Applicable) << Ps->WhyNot;

  for (SchedPolicy P :
       {SchedPolicy::Static, SchedPolicy::Dynamic, SchedPolicy::Guided}) {
    ParallelPlan Plan = *Ps->Plan;
    Plan.Sched = P;
    Recorder Rec;
    NativeRegistry Natives = makeToyNatives(Rec);
    RunConfig Config;
    Config.Plan = &Plan;
    Config.Simulate = false;
    RunOutcome Out = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                               Natives, Config);
    EXPECT_EQ(Out.Status, RunStatus::Ok)
        << schedPolicyName(P) << ": " << Out.Diagnostic;
    verifyCompleteness(Rec, N);
    for (size_t I = 0; I < Rec.Entries.size(); ++I)
      ASSERT_EQ(Rec.Entries[I].first, static_cast<int64_t>(I))
          << schedPolicyName(P) << ": sequential stage out of order";
  }
}

TEST(SchedPolicyTest, GuidedTilingIsAPureFunctionOfBegin) {
  // The whole dynamic-determinism story rests on this: chunk size depends
  // only on the claim counter's value, so the orbit from 0 is the unique
  // tiling every execution sees, regardless of which thread claims when.
  constexpr unsigned Threads = 4;
  uint64_t Begin = 0;
  std::vector<uint64_t> Sizes;
  while (Begin < 120) {
    uint64_t C = schedChunkSize(SchedPolicy::Guided, Begin, Threads);
    Sizes.push_back(C);
    Begin += C;
  }
  // Decaying rounds of Threads chunks: 8,8,8,8, 4,4,4,4, 2,2,2,2, 1,1,...
  std::vector<uint64_t> Expect = {8, 8, 8, 8, 4, 4, 4, 4, 2, 2, 2, 2};
  ASSERT_GE(Sizes.size(), Expect.size() + 4);
  for (size_t I = 0; I < Expect.size(); ++I)
    EXPECT_EQ(Sizes[I], Expect[I]) << "chunk " << I;
  for (size_t I = Expect.size(); I < Sizes.size(); ++I)
    EXPECT_EQ(Sizes[I], 1u) << "tail chunk " << I;
  // Off-orbit begins still make progress and stay within their chunk.
  EXPECT_EQ(schedChunkSize(SchedPolicy::Guided, 3, Threads), 5u)
      << "mid-chunk begin completes the chunk it landed in";
  // Replica routing agrees with the tiling (producers and consumers both
  // call this; a disagreement would deadlock the pipeline queues).
  for (uint64_t I = 0; I < 64; ++I) {
    unsigned R = schedReplicaOf(SchedPolicy::Guided, I, Threads);
    EXPECT_LT(R, Threads) << "iteration " << I;
  }
}

//===----------------------------------------------------------------------===//
// Pipeline (DSWP / PS-DSWP)
//===----------------------------------------------------------------------===//

TEST(PipelineExecTest, PsDswpAppliesWithoutSelf) {
  auto Toy = analyzeToy(false, 4, SyncMode::Mutex);
  auto *Ps = findScheme(Toy.Schemes, Strategy::PsDswp);
  ASSERT_NE(Ps, nullptr);
  EXPECT_TRUE(Ps->Applicable) << Ps->WhyNot;
  ASSERT_GE(Ps->Plan->Stages.size(), 2u);
  // The expensive pure work stage replicates; record stays sequential.
  bool HasParallel = false;
  for (const StagePlan &S : Ps->Plan->Stages)
    HasParallel |= S.Parallel;
  EXPECT_TRUE(HasParallel);
}

TEST(PipelineExecTest, ThreadedDeterministicOrder) {
  constexpr int64_t N = 150;
  auto Toy = analyzeToy(false, 4, SyncMode::Mutex);
  auto *Ps = findScheme(Toy.Schemes, Strategy::PsDswp);
  ASSERT_TRUE(Ps && Ps->Applicable) << Ps->WhyNot;

  Recorder Rec;
  NativeRegistry Natives = makeToyNatives(Rec);
  RunConfig Config;
  Config.Plan = &*Ps->Plan;
  Config.Simulate = false;
  RunOutcome Out = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives,
                             Config);
  EXPECT_EQ(Out.Iterations, static_cast<uint64_t>(N));
  verifyCompleteness(Rec, N);
  // The record stage is sequential: iteration order must be preserved
  // (the paper's deterministic-output guarantee).
  for (size_t I = 0; I < Rec.Entries.size(); ++I)
    EXPECT_EQ(Rec.Entries[I].first, static_cast<int64_t>(I))
        << "sequential stage must run in iteration order";
}

TEST(PipelineExecTest, SimulatedSpeedup) {
  constexpr int64_t N = 256;
  auto Toy = analyzeToy(false, 8, SyncMode::Mutex);
  auto *Ps = findScheme(Toy.Schemes, Strategy::PsDswp);
  ASSERT_TRUE(Ps && Ps->Applicable) << Ps->WhyNot;

  Recorder RecSeq;
  NativeRegistry NativesSeq = makeToyNatives(RecSeq);
  RunConfig SeqConfig;
  RunOutcome Seq = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                             NativesSeq, SeqConfig);

  Recorder RecPar;
  NativeRegistry NativesPar = makeToyNatives(RecPar);
  RunConfig ParConfig;
  ParConfig.Plan = &*Ps->Plan;
  RunOutcome Par = runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)},
                             NativesPar, ParConfig);

  verifyCompleteness(RecPar, N);
  for (size_t I = 0; I < RecPar.Entries.size(); ++I)
    EXPECT_EQ(RecPar.Entries[I].first, static_cast<int64_t>(I));

  double Speedup = static_cast<double>(Seq.VirtualNs) / Par.VirtualNs;
  EXPECT_GT(Speedup, 3.0) << "PS-DSWP should scale the work stage";
}

TEST(PipelineExecTest, DswpTwoStageRuns) {
  constexpr int64_t N = 100;
  auto Toy = analyzeToy(false, 2, SyncMode::Mutex);
  auto *Dswp = findScheme(Toy.Schemes, Strategy::Dswp);
  ASSERT_TRUE(Dswp && Dswp->Applicable) << Dswp->WhyNot;

  Recorder Rec;
  NativeRegistry Natives = makeToyNatives(Rec);
  RunConfig Config;
  Config.Plan = &*Dswp->Plan;
  Config.Simulate = false;
  runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives, Config);
  verifyCompleteness(Rec, N);
  for (size_t I = 0; I < Rec.Entries.size(); ++I)
    EXPECT_EQ(Rec.Entries[I].first, static_cast<int64_t>(I));
}

//===----------------------------------------------------------------------===//
// TM execution
//===----------------------------------------------------------------------===//

TEST(TmExecTest, TransactionalCounterCorrect) {
  auto C = compileOk("int counter;\n"
                     "#pragma commset decl(CSET, self)\n"
                     "#pragma commset member(SELF)\n"
                     "void bump() { counter = counter + 1; }\n"
                     "extern int work(int x);\n"
                     "#pragma commset effects(work, pure)\n"
                     "int run(int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    work(i);\n"
                     "    bump();\n"
                     "  }\n"
                     "  return counter;\n"
                     "}\n");
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("run", Diags);
  ASSERT_NE(T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = 4;
  Opts.Sync = SyncMode::Tm;
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  auto *Doall = findScheme(Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;
  auto It = Doall->Plan->MemberSync.find("bump");
  ASSERT_NE(It, Doall->Plan->MemberSync.end());
  EXPECT_TRUE(It->second.TmEligible);

  NativeRegistry Natives;
  Natives.add("work", [](const RtValue *Args, unsigned) {
    return RtValue::ofInt(Args[0].I);
  });
  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  RunOutcome Out =
      runScheme(*C, T->F, {RtValue::ofInt(500)}, Natives, Config);
  EXPECT_EQ(Out.Result.I, 500);
}

} // namespace
