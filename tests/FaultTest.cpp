//===- FaultTest.cpp - Fault injection and resilient engine tests ---------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Covers the resilient execution engine end to end: deterministic fault
// injection, bounded STM retry, lock-timeout diagnostics, SPSC queue
// poisoning, the supervised fork-join watchdog, and the guaranteed
// sequential fallback observable through Runner's structured diagnostics.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Exec/ThreadedPlatform.h"
#include "commset/Runtime/FaultInjector.h"
#include "commset/Runtime/Locks.h"
#include "commset/Runtime/SpscQueue.h"
#include "commset/Runtime/Stm.h"
#include "commset/Runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

using namespace commset;

namespace {

std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C.get(), nullptr) << Diags.str();
  return C;
}

/// Thread-safe recorder mirroring ExecTest's observable side effect.
struct Recorder {
  std::mutex M;
  std::vector<std::pair<int64_t, int64_t>> Entries;

  void add(int64_t I, int64_t V) {
    std::lock_guard<std::mutex> Guard(M);
    Entries.push_back({I, V});
  }

  void clear() {
    std::lock_guard<std::mutex> Guard(M);
    Entries.clear();
  }
};

const char *toySource(bool RecordSelf) {
  static std::string WithSelf = std::string("extern int work(int x);\n") +
                                "#pragma commset member(SELF)\n"
                                "extern void record(int i, int v);\n"
                                "#pragma commset effects(work, pure)\n"
                                "#pragma commset effects(record, "
                                "reads(out), writes(out))\n"
                                "void run(int n) {\n"
                                "  for (int i = 0; i < n; i++) {\n"
                                "    record(i, work(i));\n"
                                "  }\n"
                                "}\n";
  static std::string NoSelf = std::string("extern int work(int x);\n") +
                              "extern void record(int i, int v);\n"
                              "#pragma commset effects(work, pure)\n"
                              "#pragma commset effects(record, "
                              "reads(out), writes(out))\n"
                              "void run(int n) {\n"
                              "  for (int i = 0; i < n; i++) {\n"
                              "    record(i, work(i));\n"
                              "  }\n"
                              "}\n";
  return RecordSelf ? WithSelf.c_str() : NoSelf.c_str();
}

NativeRegistry makeToyNatives(Recorder &Rec) {
  NativeRegistry Natives;
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) {
        return RtValue::ofInt(Args[0].I * Args[0].I + 1);
      },
      /*FixedCostNs=*/20000);
  Natives.add(
      "record",
      [&Rec](const RtValue *Args, unsigned) {
        Rec.add(Args[0].I, Args[1].I);
        return RtValue();
      },
      /*FixedCostNs=*/400);
  return Natives;
}

struct ToyRun {
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  std::vector<SchemeReport> Schemes;
};

ToyRun analyzeToy(bool RecordSelf, unsigned Threads, SyncMode Sync) {
  ToyRun R;
  R.C = compileOk(toySource(RecordSelf));
  if (!R.C)
    return R;
  DiagnosticEngine Diags;
  R.T = R.C->analyzeLoop("run", Diags);
  EXPECT_NE(R.T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = Sync;
  Opts.NativeCostHints = {{"work", 20000.0}, {"record", 400.0}};
  R.Schemes = buildAllSchemes(*R.C, *R.T, Opts);
  return R;
}

const SchemeReport *findScheme(const std::vector<SchemeReport> &Schemes,
                               Strategy Kind) {
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Kind)
      return &S;
  return nullptr;
}

void verifyCompleteness(const Recorder &Rec, int64_t N) {
  ASSERT_EQ(Rec.Entries.size(), static_cast<size_t>(N));
  std::vector<char> Seen(N, 0);
  for (auto [I, V] : Rec.Entries) {
    ASSERT_GE(I, 0);
    ASSERT_LT(I, N);
    EXPECT_FALSE(Seen[I]) << "duplicate iteration " << I;
    Seen[I] = 1;
    EXPECT_EQ(V, I * I + 1) << "wrong payload for iteration " << I;
  }
}

//===----------------------------------------------------------------------===//
// FaultInjector: determinism and stream independence
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, DeterministicPerSeed) {
  FaultPolicy P = FaultPolicy::preset(3, 42); // mixed: several nonzero rates
  std::vector<bool> First, Second;
  {
    FaultInjector FI(P);
    for (unsigned I = 0; I < 200; ++I)
      First.push_back(FI.fires(FaultKind::StmAbort, /*Thread=*/1));
  }
  {
    FaultInjector FI(P);
    for (unsigned I = 0; I < 200; ++I)
      Second.push_back(FI.fires(FaultKind::StmAbort, /*Thread=*/1));
  }
  EXPECT_EQ(First, Second) << "same seed must replay the same decisions";

  FaultPolicy Q = P;
  Q.Seed = 43;
  FaultInjector FJ(Q);
  std::vector<bool> Other;
  for (unsigned I = 0; I < 200; ++I)
    Other.push_back(FJ.fires(FaultKind::StmAbort, /*Thread=*/1));
  EXPECT_NE(First, Other) << "different seeds should diverge";
}

TEST(FaultInjectorTest, StreamsAreIndependentOfOtherThreads) {
  // The (kind, thread) stream depends only on the call index within that
  // stream: interleaving calls from another thread must not perturb it.
  FaultPolicy P = FaultPolicy::preset(0, 7);
  std::vector<bool> Alone;
  {
    FaultInjector FI(P);
    for (unsigned I = 0; I < 100; ++I)
      Alone.push_back(FI.fires(FaultKind::StmAbort, 0));
  }
  std::vector<bool> Interleaved;
  {
    FaultInjector FI(P);
    for (unsigned I = 0; I < 100; ++I) {
      (void)FI.fires(FaultKind::StmAbort, 1);
      (void)FI.fires(FaultKind::WorkerDelay, 0);
      Interleaved.push_back(FI.fires(FaultKind::StmAbort, 0));
    }
  }
  EXPECT_EQ(Alone, Interleaved);
}

TEST(FaultInjectorTest, ZeroRateNeverFires) {
  FaultPolicy P; // all rates zero
  P.Seed = 99;
  FaultInjector FI(P);
  for (unsigned I = 0; I < 500; ++I) {
    EXPECT_FALSE(FI.fires(FaultKind::TaskFailure, I % 4));
    EXPECT_FALSE(FI.maybeDelay(FaultKind::WorkerDelay, I % 4));
  }
  EXPECT_EQ(FI.totalInjected(), 0u);
}

TEST(FaultInjectorTest, PresetsCycleAndCountInjections) {
  EXPECT_EQ(FaultPolicy::preset(0, 1).Name, FaultPolicy::preset(4, 1).Name);
  // Full-rate policy fires every time and counts what it injected.
  FaultPolicy P;
  P.Seed = 5;
  P.StmAbortPerMille = 1000;
  FaultInjector FI(P);
  for (unsigned I = 0; I < 10; ++I)
    EXPECT_TRUE(FI.fires(FaultKind::StmAbort, 2));
  EXPECT_EQ(FI.injected(FaultKind::StmAbort), 10u);
  EXPECT_EQ(FI.totalInjected(), 10u);
}

//===----------------------------------------------------------------------===//
// STM: injected aborts and the bounded retry governor
//===----------------------------------------------------------------------===//

TEST(StmFaultTest, InjectedAbortForcesCommitFailure) {
  FaultPolicy P;
  P.Seed = 11;
  P.StmAbortPerMille = 1000;
  FaultInjector FI(P);
  StmSpace Space;
  uint64_t Cell = 0;
  Stm Tx(Space, &FI, /*ThreadId=*/0);
  for (unsigned I = 0; I < 3; ++I) {
    Tx.begin();
    Tx.write(&Cell, 7);
    EXPECT_FALSE(Tx.commit()) << "full-rate StmAbort must abort every commit";
  }
  EXPECT_EQ(Cell, 0u) << "aborted transactions must not publish writes";
}

TEST(StmFaultTest, RetryGovernorExhaustsAfterBudget) {
  StmRetryGovernor Gov(/*MaxAttempts=*/4, /*BackoffBaseUs=*/1,
                       /*BackoffCapUs=*/4, /*JitterSeed=*/1);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Retry);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Retry);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Retry);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Exhausted);
  EXPECT_EQ(Gov.failures(), 4u);
  // Once exhausted it stays exhausted.
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Exhausted);
}

//===----------------------------------------------------------------------===//
// Ranked locks: timeout + deadlock-suspicion diagnostic
//===----------------------------------------------------------------------===//

TEST(LockTimeoutTest, RankCycleDiagnostic) {
  // Construct the classic two-rank deadlock shape by bypassing the
  // ascending-order discipline across *separate* calls: thread 0 holds
  // rank 0 and wants rank 1; thread 1 holds rank 1 and wants rank 0.
  CommSetLockManager Locks(2, LockMode::Mutex);
  Locks.acquireOrTimeout({0}, /*ThreadId=*/0, /*TimeoutMs=*/0);

  std::atomic<bool> PeerHolds{false};
  std::thread Peer([&] {
    Locks.acquireOrTimeout({1}, /*ThreadId=*/1, /*TimeoutMs=*/0);
    PeerHolds.store(true);
    try {
      Locks.acquireOrTimeout({0}, /*ThreadId=*/1, /*TimeoutMs=*/2000);
      Locks.release({0}); // acquired after the main thread backed off
    } catch (const RegionFault &) {
      // Also acceptable: both sides timed out.
    }
    Locks.release({1});
  });
  while (!PeerHolds.load())
    std::this_thread::yield();
  // Give the peer a moment to actually block on rank 0 so the diagnostic
  // can see its Waiting edge.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::string Diag;
  try {
    Locks.acquireOrTimeout({1}, /*ThreadId=*/0, /*TimeoutMs=*/150);
    FAIL() << "rank 1 is held by the peer; acquisition must time out";
  } catch (const RegionFault &F) {
    EXPECT_EQ(F.Kind, FaultKind::LockTimeout);
    EXPECT_EQ(F.Thread, 0u);
    Diag = F.Detail;
  }
  Locks.release({0}); // unblocks the peer
  Peer.join();

  EXPECT_NE(Diag.find("lock timeout: thread 0 waited 150ms for rank 1"),
            std::string::npos)
      << Diag;
  EXPECT_NE(Diag.find("suspected rank cycle"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("rank 1 held by thread 1"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("rank 0 held by thread 0"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("(cycle closes)"), std::string::npos) << Diag;
}

TEST(LockTimeoutTest, UntimedAcquireIsVisibleToTheHolderGraph) {
  // Regression: the unbounded acquire() path never recorded itself in
  // Holder, so a peer timing out on a lock taken that way got "held by
  // <none>" — a dead-end diagnostic for a lock that very much has an
  // owner.
  CommSetLockManager Locks(1, LockMode::Mutex);
  Locks.acquire({0}, /*ThreadId=*/7);
  try {
    Locks.acquireOrTimeout({0}, /*ThreadId=*/1, /*TimeoutMs=*/50);
    FAIL() << "rank 0 is held; acquisition must time out";
  } catch (const RegionFault &F) {
    EXPECT_EQ(F.Kind, FaultKind::LockTimeout);
    EXPECT_NE(F.Detail.find("rank 0 held by thread 7"), std::string::npos)
        << F.Detail;
    EXPECT_EQ(F.Detail.find("<none>"), std::string::npos) << F.Detail;
  }
  Locks.release({0});
}

TEST(LockTimeoutTest, TimeoutReleasesPartiallyTakenRanks) {
  CommSetLockManager Locks(3, LockMode::Spin);
  // Peer pins rank 2 so the main thread's {0,1,2} acquisition times out
  // after taking 0 and 1.
  Locks.acquireOrTimeout({2}, /*ThreadId=*/1, /*TimeoutMs=*/0);
  EXPECT_THROW(
      Locks.acquireOrTimeout({0, 1, 2}, /*ThreadId=*/0, /*TimeoutMs=*/50),
      RegionFault);
  // Ranks 0 and 1 must have been released on the failure path.
  Locks.acquireOrTimeout({0, 1}, /*ThreadId=*/0, /*TimeoutMs=*/50);
  Locks.release({0, 1});
  Locks.release({2});
}

//===----------------------------------------------------------------------===//
// SPSC queue poisoning
//===----------------------------------------------------------------------===//

TEST(SpscPoisonTest, PoisonUnblocksProducerAndConsumer) {
  // Blocked producer: queue full, pushWait spins until poison.
  SpscQueue<int> Full(2);
  ASSERT_TRUE(Full.pushWait(1));
  ASSERT_TRUE(Full.pushWait(2));
  std::atomic<int> ProducerResult{-1};
  std::thread Producer(
      [&] { ProducerResult.store(Full.pushWait(3) ? 1 : 0); });

  // Blocked consumer: queue empty, popWait spins until poison.
  SpscQueue<int> Empty(2);
  std::atomic<int> ConsumerResult{-1};
  std::thread Consumer([&] {
    int V = 0;
    ConsumerResult.store(Empty.popWait(V) ? 1 : 0);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ProducerResult.load(), -1) << "producer should still be blocked";
  EXPECT_EQ(ConsumerResult.load(), -1) << "consumer should still be blocked";

  Full.poison();
  Empty.poison();
  Producer.join();
  Consumer.join();
  EXPECT_EQ(ProducerResult.load(), 0) << "pushWait must fail once poisoned";
  EXPECT_EQ(ConsumerResult.load(), 0) << "popWait must fail once poisoned";
}

TEST(SpscPoisonTest, PoisonedPopStillDrainsInFlightEntries) {
  SpscQueue<int> Q(4);
  ASSERT_TRUE(Q.pushWait(10));
  ASSERT_TRUE(Q.pushWait(11));
  Q.poison();
  EXPECT_FALSE(Q.pushWait(12)) << "no new entries after poison";
  int V = 0;
  EXPECT_TRUE(Q.popWait(V));
  EXPECT_EQ(V, 10);
  EXPECT_TRUE(Q.popWait(V));
  EXPECT_EQ(V, 11);
  EXPECT_FALSE(Q.popWait(V)) << "drained + poisoned must fail";
}

//===----------------------------------------------------------------------===//
// Supervised fork-join: watchdog, grace deadline, fault propagation
//===----------------------------------------------------------------------===//

TEST(SupervisedPoolTest, WatchdogTripReportsStalledWorker) {
  RegionControl Control;
  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([&] { Control.heartbeat(0); });
  Tasks.push_back([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  });
  SupervisedReport Rep = runParallelSupervised(
      Tasks, Control, /*WatchdogStallMs=*/40, /*JoinGraceMs=*/5000, {});
  EXPECT_TRUE(Rep.WatchdogTripped);
  ASSERT_EQ(Rep.StalledWorkers.size(), 1u);
  EXPECT_EQ(Rep.StalledWorkers[0], 1u);
  EXPECT_TRUE(Rep.AllJoined) << "sleeper finishes within the grace window";
  EXPECT_TRUE(Rep.Faulted);
  EXPECT_EQ(Rep.Kind, FaultKind::WatchdogStall);
  EXPECT_NE(Rep.Detail.find("watchdog: no region progress"),
            std::string::npos)
      << Rep.Detail;
  EXPECT_NE(Rep.Detail.find("stalled workers: 1"), std::string::npos)
      << Rep.Detail;
}

TEST(SupervisedPoolTest, WedgedWorkerIsAbandonedNotHungOn) {
  // Satellite (a): shutdown joins with a deadline; a worker that never
  // unwinds is detached and reported instead of wedging the engine.
  std::atomic<bool> WorkerExited{false};
  RegionControl Control;
  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([&] { Control.heartbeat(0); });
  Tasks.push_back([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    WorkerExited.store(true);
  });
  auto Start = std::chrono::steady_clock::now();
  SupervisedReport Rep = runParallelSupervised(
      Tasks, Control, /*WatchdogStallMs=*/30, /*JoinGraceMs=*/60, {});
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_TRUE(Rep.WatchdogTripped);
  EXPECT_FALSE(Rep.AllJoined);
  EXPECT_LT(ElapsedMs, 500) << "must return before the wedged worker exits";
  EXPECT_NE(Rep.Detail.find("abandoned after join grace expired"),
            std::string::npos)
      << Rep.Detail;
  // Keep Tasks/Control alive until the detached worker is done with them.
  while (!WorkerExited.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

TEST(SupervisedPoolTest, ZeroJoinGraceMeansWaitForeverNotAbandonInstantly) {
  // Regression: after a watchdog trip, JoinGraceMs == 0 used to compare
  // StalledMs >= 0 and abandon every unfinished worker immediately. Zero
  // means "wait forever for the join" (matching WatchdogStallMs == 0 =
  // "never trip"), so a worker that unwinds after the trip still joins.
  RegionControl Control;
  std::atomic<bool> WorkerExited{false};
  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([&Control] { Control.heartbeat(0); });
  Tasks.push_back([&WorkerExited] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    WorkerExited.store(true);
  });
  SupervisedReport Rep = runParallelSupervised(
      Tasks, Control, /*WatchdogStallMs=*/30, /*JoinGraceMs=*/0, {});
  EXPECT_TRUE(Rep.WatchdogTripped);
  EXPECT_TRUE(Rep.AllJoined)
      << "JoinGraceMs==0 must wait out the sleeper, not abandon it";
  EXPECT_TRUE(WorkerExited.load()) << "the join must cover the full sleep";
}

TEST(SupervisedPoolTest, WorkerFaultCancelsSiblings) {
  RegionControl Control;
  std::atomic<bool> ExternallyCancelled{false};
  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([&] {
    throw RegionFault(FaultKind::TaskFailure, 0, "injected failure");
  });
  Tasks.push_back([&] {
    // Cooperative sibling: loops with heartbeats until cancelled.
    for (unsigned I = 0; I < 100000; ++I) {
      Control.heartbeat(1);
      if (Control.cancelled())
        throw RegionFault(FaultKind::Cancelled, 1, "unwound on cancel");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  SupervisedReport Rep = runParallelSupervised(
      Tasks, Control, /*WatchdogStallMs=*/10000, /*JoinGraceMs=*/5000,
      [&] { ExternallyCancelled.store(true); });
  EXPECT_TRUE(Rep.Faulted);
  EXPECT_EQ(Rep.Kind, FaultKind::TaskFailure)
      << "the real fault must displace the sibling's Cancelled unwind";
  EXPECT_EQ(Rep.FaultThread, 0u);
  EXPECT_EQ(Rep.Detail, "injected failure");
  EXPECT_FALSE(Rep.WatchdogTripped);
  EXPECT_TRUE(Rep.AllJoined);
  EXPECT_TRUE(ExternallyCancelled.load()) << "CancelAll hook must fire";
}

TEST(SupervisedPoolTest, AbandonedWorkerLateFaultTouchesNoRegionState) {
  // Regression: an abandoned worker used to cancel the region through a
  // captured RegionControl& and CancelAll hook when it finally faulted —
  // dangling references once runParallelSupervised had returned and the
  // caller destroyed the region. Late faults must be absorbed by the
  // shared join state instead.
  auto Release = std::make_shared<std::atomic<bool>>(false);
  auto CancelCalls = std::make_shared<std::atomic<int>>(0);
  auto Control = std::make_unique<RegionControl>();
  RegionControl *Ctl = Control.get();
  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([Ctl] { Ctl->heartbeat(0); });
  Tasks.push_back([Release] {
    while (!Release->load())
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    throw RegionFault(FaultKind::TaskFailure, 1, "fault after abandonment");
  });
  SupervisedReport Rep = runParallelSupervised(
      Tasks, *Control, /*WatchdogStallMs=*/30, /*JoinGraceMs=*/60,
      [CancelCalls] { CancelCalls->fetch_add(1); });
  EXPECT_TRUE(Rep.WatchdogTripped);
  EXPECT_FALSE(Rep.AllJoined);
  int CallsAtReturn = CancelCalls->load();
  EXPECT_GE(CallsAtReturn, 1) << "the watchdog trip runs the CancelAll hook";
  // Destroy the region state, then let the abandoned worker fault. The
  // closed join state must swallow its cancel instead of dereferencing
  // the freed RegionControl (sanitized builds catch the dereference).
  Control.reset();
  Release->store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(CancelCalls->load(), CallsAtReturn)
      << "a late fault must not re-run the region's CancelAll hook";
}

TEST(SupervisedPoolTest, RetiredSlotRespawnsExactlyOnceOnNextRegion) {
  // Satellite audit: after an abandonment retires a slot, the next region
  // must respawn that slot exactly once (and only that slot — the
  // surviving worker is reused), run cleanly, and never double-retire.
  WorkerPool &Pool = WorkerPool::global();
  auto Gate = std::make_shared<std::atomic<bool>>(false);
  {
    RegionControl Control;
    std::vector<std::function<void()>> Tasks;
    Tasks.push_back([&Control] { Control.heartbeat(0); });
    Tasks.push_back([Gate] {
      while (!Gate->load())
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    SupervisedReport Rep = runParallelSupervised(
        Tasks, Control, /*WatchdogStallMs=*/30, /*JoinGraceMs=*/60, {});
    ASSERT_TRUE(Rep.WatchdogTripped);
    ASSERT_FALSE(Rep.AllJoined) << "the gated worker must be abandoned";
  }
  uint64_t SpawnsAfterAbandon = Pool.spawnCount();

  std::atomic<int> Ran{0};
  RegionControl Control2;
  std::vector<std::function<void()>> Tasks2;
  for (unsigned I = 0; I < 2; ++I)
    Tasks2.push_back([&Ran, &Control2, I] {
      Control2.heartbeat(I);
      Ran.fetch_add(1);
    });
  SupervisedReport Rep2 = runParallelSupervised(
      Tasks2, Control2, /*WatchdogStallMs=*/5000, /*JoinGraceMs=*/5000, {});
  EXPECT_FALSE(Rep2.Faulted) << Rep2.Detail;
  EXPECT_TRUE(Rep2.AllJoined);
  EXPECT_EQ(Ran.load(), 2);
  EXPECT_EQ(Pool.spawnCount(), SpawnsAfterAbandon + 1)
      << "exactly the retired slot respawns; the survivor is reused";
  Gate->store(true); // let the wedged thread drain and exit
}

//===----------------------------------------------------------------------===//
// Engine-level degradation: parallel plan fails, sequential fallback wins
//===----------------------------------------------------------------------===//

TEST(FaultExecTest, StmExhaustionDegradesToSequential) {
  auto C = compileOk("int counter;\n"
                     "#pragma commset decl(CSET, self)\n"
                     "#pragma commset member(SELF)\n"
                     "void bump() { counter = counter + 1; }\n"
                     "extern int work(int x);\n"
                     "#pragma commset effects(work, pure)\n"
                     "int run(int n) {\n"
                     "  for (int i = 0; i < n; i++) {\n"
                     "    work(i);\n"
                     "    bump();\n"
                     "  }\n"
                     "  return counter;\n"
                     "}\n");
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("run", Diags);
  ASSERT_NE(T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = 4;
  Opts.Sync = SyncMode::Tm;
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  auto *Doall = findScheme(Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  NativeRegistry Natives;
  Natives.add("work", [](const RtValue *Args, unsigned) {
    return RtValue::ofInt(Args[0].I);
  });

  FaultPolicy Policy;
  Policy.Seed = 21;
  Policy.Name = "abort-everything";
  Policy.StmAbortPerMille = 1000; // every commit aborts -> retries exhaust
  FaultInjector FI(Policy);
  ResilienceConfig RC;
  RC.StmMaxAttempts = 4;
  RC.StmBackoffBaseUs = 1;
  RC.StmBackoffCapUs = 8;
  RC.Faults = &FI;

  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  Config.Resilience = &RC;
  RunOutcome Out = runScheme(*C, T->F, {RtValue::ofInt(500)}, Natives, Config);

  EXPECT_EQ(Out.Status, RunStatus::DegradedSequential);
  EXPECT_EQ(Out.DegradedWhy, FaultKind::StmExhausted);
  EXPECT_EQ(Out.Result.I, 500) << "fallback must produce the sequential answer";
  EXPECT_NE(Out.Diagnostic.find("degraded"), std::string::npos)
      << Out.Diagnostic;
  EXPECT_NE(Out.Diagnostic.find("STM retries exhausted"), std::string::npos)
      << Out.Diagnostic;
  EXPECT_GT(FI.injected(FaultKind::StmAbort), 0u);
}

TEST(FaultExecTest, TaskFailureDoallFallsBackComplete) {
  constexpr int64_t N = 60;
  auto Toy = analyzeToy(true, 4, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  Recorder Rec;
  NativeRegistry Natives = makeToyNatives(Rec);

  FaultPolicy Policy;
  Policy.Seed = 33;
  Policy.Name = "always-fail";
  Policy.TaskFailurePerMille = 1000; // first checkpoint kills every worker
  FaultInjector FI(Policy);
  ResilienceConfig RC;
  RC.Faults = &FI;

  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  Config.Resilience = &RC;
  Config.ResetState = [&Rec] { Rec.clear(); };
  RunOutcome Out =
      runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives, Config);

  EXPECT_EQ(Out.Status, RunStatus::DegradedSequential);
  EXPECT_EQ(Out.DegradedWhy, FaultKind::TaskFailure);
  EXPECT_NE(Out.Diagnostic.find("injected spurious task failure"),
            std::string::npos)
      << Out.Diagnostic;
  verifyCompleteness(Rec, N); // ResetState discarded the partial entries
}

TEST(FaultExecTest, WatchdogTripOnStalledDswpStage) {
  constexpr int64_t N = 30;
  auto Toy = analyzeToy(false, 2, SyncMode::Mutex);
  auto *Dswp = findScheme(Toy.Schemes, Strategy::Dswp);
  ASSERT_TRUE(Dswp && Dswp->Applicable) << Dswp->WhyNot;

  Recorder Rec;
  NativeRegistry Natives = makeToyNatives(Rec);

  FaultPolicy Policy;
  Policy.Seed = 77;
  Policy.Name = "stall-everything";
  Policy.WorkerStallPerMille = 1000;
  Policy.WorkerStallUs = 120000; // 120ms stall at every checkpoint
  FaultInjector FI(Policy);
  ResilienceConfig RC;
  RC.WatchdogStallMs = 40;
  RC.JoinGraceMs = 5000; // stalls are finite; workers unwind within grace
  RC.Faults = &FI;

  RunConfig Config;
  Config.Plan = &*Dswp->Plan;
  Config.Simulate = false;
  Config.Resilience = &RC;
  Config.ResetState = [&Rec] { Rec.clear(); };
  RunOutcome Out =
      runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives, Config);

  EXPECT_EQ(Out.Status, RunStatus::DegradedSequential);
  EXPECT_EQ(Out.DegradedWhy, FaultKind::WatchdogStall);
  EXPECT_NE(Out.Diagnostic.find("watchdog"), std::string::npos)
      << Out.Diagnostic;
  verifyCompleteness(Rec, N);
}

TEST(FaultExecTest, DeadlineExceededCancelsWithoutSequentialRerun) {
  // A wall-clock budget (commset-run --deadline-ms, commsetd per-request
  // deadlines) cancels the region at the first checkpoint past the cutoff
  // and does NOT re-execute sequentially: the budget is already spent, so
  // a fallback rerun would blow through it again.
  constexpr int64_t N = 400;
  auto Toy = analyzeToy(true, 4, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  Recorder Rec;
  NativeRegistry Natives;
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return RtValue::ofInt(Args[0].I * Args[0].I + 1);
      },
      /*FixedCostNs=*/20000);
  Natives.add(
      "record",
      [&Rec](const RtValue *Args, unsigned) {
        Rec.add(Args[0].I, Args[1].I);
        return RtValue();
      },
      /*FixedCostNs=*/400);

  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  Config.DeadlineMs = 15; // 400 iterations x 1ms of work >> 15ms budget
  Config.ResetState = [&Rec] { Rec.clear(); };
  auto Start = std::chrono::steady_clock::now();
  RunOutcome Out =
      runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives, Config);
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  EXPECT_EQ(Out.Status, RunStatus::DeadlineExceeded);
  EXPECT_EQ(Out.DegradedWhy, FaultKind::DeadlineExceeded);
  EXPECT_NE(Out.Diagnostic.find("cancelled"), std::string::npos)
      << Out.Diagnostic;
  EXPECT_NE(Out.Diagnostic.find("deadline"), std::string::npos)
      << Out.Diagnostic;
  EXPECT_EQ(Out.Iterations, 0u) << "no trustworthy stats from a cancelled run";
  EXPECT_TRUE(Rec.Entries.empty())
      << "partial effects must be discarded, not completed by a rerun";
  EXPECT_LT(ElapsedMs, 2000) << "cancel must not wait out all " << N
                             << " iterations";
}

TEST(FaultExecTest, NoFaultsMeansNoDegradation) {
  constexpr int64_t N = 100;
  auto Toy = analyzeToy(true, 4, SyncMode::Mutex);
  auto *Doall = findScheme(Toy.Schemes, Strategy::Doall);
  ASSERT_TRUE(Doall && Doall->Applicable) << Doall->WhyNot;

  Recorder Rec;
  NativeRegistry Natives = makeToyNatives(Rec);
  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false; // default resilience: supervised, no injection
  RunOutcome Out =
      runScheme(*Toy.C, Toy.T->F, {RtValue::ofInt(N)}, Natives, Config);

  EXPECT_EQ(Out.Status, RunStatus::Ok);
  EXPECT_EQ(Out.DegradedWhy, FaultKind::None);
  EXPECT_TRUE(Out.Diagnostic.empty()) << Out.Diagnostic;
  verifyCompleteness(Rec, N);
}

//===----------------------------------------------------------------------===//
// Runner structured diagnostics
//===----------------------------------------------------------------------===//

TEST(RunStatusTest, NamesAndExitCodesAreDistinct) {
  EXPECT_STREQ(runStatusName(RunStatus::Ok), "ok");
  EXPECT_STREQ(runStatusName(RunStatus::DegradedSequential),
               "degraded-to-sequential");
  EXPECT_STREQ(runStatusName(RunStatus::InternalError), "internal-error");
  EXPECT_STREQ(runStatusName(RunStatus::DeadlineExceeded),
               "deadline-exceeded");
  EXPECT_EQ(exitCodeFor(RunStatus::Ok), 0);
  EXPECT_EQ(exitCodeFor(RunStatus::DegradedSequential), 10);
  EXPECT_EQ(exitCodeFor(RunStatus::InternalError), 70);
  EXPECT_EQ(exitCodeFor(RunStatus::DeadlineExceeded), 75);
}

} // namespace
