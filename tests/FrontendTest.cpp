//===- FrontendTest.cpp - Lexer/Parser/Sema unit tests --------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lang/Lexer.h"
#include "commset/Lang/Parser.h"
#include "commset/Lang/Sema.h"
#include "commset/Support/Casting.h"

#include <gtest/gtest.h>

using namespace commset;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  return Lex.lexAll();
}

std::unique_ptr<Program> parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = Parser::parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return P;
}

/// Parses and runs Sema, expecting success.
std::unique_ptr<Program> analyzeOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto P = Parser::parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  Sema S(*P, Diags);
  EXPECT_TRUE(S.run()) << Diags.str();
  return P;
}

/// Parses and runs Sema, expecting an error containing \p Needle.
void analyzeError(const std::string &Source, const std::string &Needle) {
  DiagnosticEngine Diags;
  auto P = Parser::parse(Source, Diags);
  if (!Diags.hasErrors()) {
    Sema S(*P, Diags);
    S.run();
  }
  EXPECT_TRUE(Diags.hasErrors()) << "expected error matching: " << Needle;
  EXPECT_TRUE(Diags.contains(Needle)) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  DiagnosticEngine Diags;
  auto Toks = lex("int x = 42 + 3.5; // comment\nif (x <= 2) {}", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokKind> Expected = {
      TokKind::KwInt,   TokKind::Identifier, TokKind::Assign,
      TokKind::IntLiteral, TokKind::Plus,    TokKind::FloatLiteral,
      TokKind::Semi,    TokKind::KwIf,       TokKind::LParen,
      TokKind::Identifier, TokKind::LessEq,  TokKind::IntLiteral,
      TokKind::RParen,  TokKind::LBrace,     TokKind::RBrace,
      TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
  EXPECT_EQ(Toks[3].IntValue, 42);
  EXPECT_DOUBLE_EQ(Toks[5].FloatValue, 3.5);
}

TEST(LexerTest, PragmaBrackets) {
  DiagnosticEngine Diags;
  auto Toks = lex("#pragma commset decl(FSET)\nint x;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[0].Kind, TokKind::PragmaCommset);
  EXPECT_EQ(Toks[1].Kind, TokKind::Identifier);
  EXPECT_EQ(Toks[1].Text, "decl");
  EXPECT_EQ(Toks[5].Kind, TokKind::PragmaEnd);
  EXPECT_EQ(Toks[6].Kind, TokKind::KwInt);
}

TEST(LexerTest, NonCommsetPragmaIgnored) {
  DiagnosticEngine Diags;
  auto Toks = lex("#pragma once\nint x;", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[0].Kind, TokKind::KwInt);
}

TEST(LexerTest, StringEscapes) {
  DiagnosticEngine Diags;
  auto Toks = lex("\"a\\nb\\tc\"", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[0].Text, "a\nb\tc");
}

TEST(LexerTest, UnterminatedString) {
  DiagnosticEngine Diags;
  lex("\"abc", Diags);
  EXPECT_TRUE(Diags.contains("unterminated string"));
}

TEST(LexerTest, CompoundOperators) {
  DiagnosticEngine Diags;
  auto Toks = lex("i++ j-- a += b -= && || == !=", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[1].Kind, TokKind::PlusPlus);
  EXPECT_EQ(Toks[3].Kind, TokKind::MinusMinus);
  EXPECT_EQ(Toks[5].Kind, TokKind::PlusAssign);
  EXPECT_EQ(Toks[7].Kind, TokKind::MinusAssign);
  EXPECT_EQ(Toks[8].Kind, TokKind::AmpAmp);
  EXPECT_EQ(Toks[9].Kind, TokKind::PipePipe);
  EXPECT_EQ(Toks[10].Kind, TokKind::EqEq);
  EXPECT_EQ(Toks[11].Kind, TokKind::NotEq);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, FunctionAndGlobal) {
  auto P = parseOk("int g = 7;\n"
                   "int add(int a, int b) { return a + b; }\n");
  ASSERT_EQ(P->Globals.size(), 1u);
  EXPECT_EQ(P->Globals[0].Name, "g");
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_EQ(P->Functions[0]->Name, "add");
  ASSERT_EQ(P->Functions[0]->Params.size(), 2u);
  EXPECT_EQ(P->Functions[0]->Params[1].Name, "b");
}

TEST(ParserTest, ExternDecl) {
  auto P = parseOk("extern int fs_open(int fileid);\n");
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_TRUE(P->Functions[0]->IsExtern);
  EXPECT_FALSE(P->Functions[0]->Body);
}

TEST(ParserTest, PrototypeIsExtern) {
  auto P = parseOk("int f(int x);\n");
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_TRUE(P->Functions[0]->IsExtern);
}

TEST(ParserTest, ForLoopDesugar) {
  auto P = parseOk("void f() { for (int i = 0; i < 10; i++) { } }");
  auto *Body = P->Functions[0]->Body.get();
  ASSERT_EQ(Body->Body.size(), 1u);
  auto *For = dyn_cast<ForStmt>(Body->Body[0].get());
  ASSERT_NE(For, nullptr);
  ASSERT_NE(For->Init.get(), nullptr);
  ASSERT_NE(For->Step.get(), nullptr);
  auto *Step = dyn_cast<AssignStmt>(For->Step.get());
  ASSERT_NE(Step, nullptr);
  EXPECT_EQ(Step->Name, "i");
}

TEST(ParserTest, OperatorPrecedence) {
  auto P = parseOk("int f() { return 1 + 2 * 3 == 7 && 1 < 2; }");
  auto *Ret = cast<ReturnStmt>(P->Functions[0]->Body->Body[0].get());
  auto *And = dyn_cast<BinaryExpr>(Ret->Value.get());
  ASSERT_NE(And, nullptr);
  EXPECT_EQ(And->Op, BinaryOp::LAnd);
  auto *Eq = dyn_cast<BinaryExpr>(And->LHS.get());
  ASSERT_NE(Eq, nullptr);
  EXPECT_EQ(Eq->Op, BinaryOp::Eq);
  auto *Add = dyn_cast<BinaryExpr>(Eq->LHS.get());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  auto *Mul = dyn_cast<BinaryExpr>(Add->RHS.get());
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->Op, BinaryOp::Mul);
}

TEST(ParserTest, SetAndPredicateDecls) {
  auto P = parseOk("#pragma commset decl(FSET)\n"
                   "#pragma commset decl(SSET, self)\n"
                   "#pragma commset predicate(FSET, (int i1), (int i2), "
                   "i1 != i2)\n"
                   "#pragma commset nosync(FSET)\n");
  ASSERT_EQ(P->SetDecls.size(), 2u);
  EXPECT_EQ(P->SetDecls[0].Name, "FSET");
  EXPECT_EQ(P->SetDecls[0].Kind, CommSetKind::Group);
  EXPECT_EQ(P->SetDecls[1].Kind, CommSetKind::Self);
  ASSERT_EQ(P->Predicates.size(), 1u);
  EXPECT_EQ(P->Predicates[0].SetName, "FSET");
  ASSERT_EQ(P->Predicates[0].Params1.size(), 1u);
  EXPECT_EQ(P->Predicates[0].Params2[0].Name, "i2");
  auto *Pred = dyn_cast<BinaryExpr>(P->Predicates[0].Predicate.get());
  ASSERT_NE(Pred, nullptr);
  EXPECT_EQ(Pred->Op, BinaryOp::Ne);
  ASSERT_EQ(P->NoSyncs.size(), 1u);
  EXPECT_EQ(P->NoSyncs[0].SetName, "FSET");
}

TEST(ParserTest, InterfaceMemberPragma) {
  auto P = parseOk("#pragma commset decl(FSET)\n"
                   "#pragma commset member(SELF, FSET(key))\n"
                   "void setbit(int key) { }\n");
  auto &F = *P->Functions[0];
  ASSERT_EQ(F.Members.size(), 2u);
  EXPECT_EQ(F.Members[0].SetName, "SELF");
  EXPECT_EQ(F.Members[1].SetName, "FSET");
  ASSERT_EQ(F.Members[1].Args.size(), 1u);
  EXPECT_EQ(F.Members[1].Args[0], "key");
}

TEST(ParserTest, BlockMemberPragma) {
  auto P = parseOk("void f() {\n"
                   "  for (int i = 0; i < 4; i++) {\n"
                   "    #pragma commset member(SELF)\n"
                   "    { }\n"
                   "  }\n"
                   "}\n");
  auto *For = cast<ForStmt>(P->Functions[0]->Body->Body[0].get());
  auto *LoopBody = cast<BlockStmt>(For->Body.get());
  auto *Inner = dyn_cast<BlockStmt>(LoopBody->Body[0].get());
  ASSERT_NE(Inner, nullptr);
  ASSERT_EQ(Inner->Members.size(), 1u);
  EXPECT_EQ(Inner->Members[0].SetName, "SELF");
}

TEST(ParserTest, NamedBlockAndEnable) {
  auto P = parseOk("#pragma commset decl(SSET, self)\n"
                   "#pragma commset namedarg(READB)\n"
                   "void mdfile(int f) {\n"
                   "  #pragma commset namedblock(READB)\n"
                   "  { }\n"
                   "}\n"
                   "void main2() {\n"
                   "  #pragma commset enable(READB: SSET)\n"
                   "  mdfile(3);\n"
                   "}\n");
  auto &F = *P->Functions[0];
  ASSERT_EQ(F.NamedArgs.size(), 1u);
  EXPECT_EQ(F.NamedArgs[0], "READB");
  auto *Inner = cast<BlockStmt>(F.Body->Body[0].get());
  EXPECT_EQ(Inner->NamedBlock, "READB");
  auto &Main = *P->Functions[1];
  auto *CallSt = cast<ExprStmt>(Main.Body->Body[0].get());
  ASSERT_EQ(CallSt->Enables.size(), 1u);
  EXPECT_EQ(CallSt->Enables[0].BlockName, "READB");
  ASSERT_EQ(CallSt->Enables[0].Sets.size(), 1u);
  EXPECT_EQ(CallSt->Enables[0].Sets[0].SetName, "SSET");
}

TEST(ParserTest, DanglingPragmaError) {
  DiagnosticEngine Diags;
  Parser::parse("#pragma commset member(SELF)\n", Diags);
  EXPECT_TRUE(Diags.contains("dangling COMMSET pragma"));
}

TEST(ParserTest, PragmaOnGlobalError) {
  DiagnosticEngine Diags;
  Parser::parse("#pragma commset member(SELF)\nint g;\n", Diags);
  EXPECT_TRUE(Diags.contains("cannot annotate a global variable"));
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(SemaTest, TypesPropagate) {
  auto P = analyzeOk("double f(int a) { double x = a + 0.5; return x; }");
  auto *D = cast<DeclStmt>(P->Functions[0]->Body->Body[0].get());
  EXPECT_EQ(D->Init->Type, TypeKind::Double);
}

TEST(SemaTest, UndeclaredVariable) {
  analyzeError("void f() { x = 1; }", "undeclared variable");
}

TEST(SemaTest, UndeclaredFunction) {
  analyzeError("void f() { g(); }", "undeclared function");
}

TEST(SemaTest, ArgumentCountMismatch) {
  analyzeError("int g(int a) { return a; } void f() { g(1, 2); }",
               "expects 1 arguments, got 2");
}

TEST(SemaTest, PtrTypeStrict) {
  analyzeError("extern ptr mk(); void f() { int x = 0; ptr p = mk(); "
               "x = p; }",
               "cannot convert ptr to int");
}

TEST(SemaTest, GlobalResolution) {
  auto P = analyzeOk("int g; void f() { g = 3; int l = g; }");
  auto *Assign = cast<AssignStmt>(P->Functions[0]->Body->Body[0].get());
  EXPECT_TRUE(Assign->IsGlobal);
  auto *Decl = cast<DeclStmt>(P->Functions[0]->Body->Body[1].get());
  auto *Ref = cast<VarRefExpr>(Decl->Init.get());
  EXPECT_TRUE(Ref->IsGlobal);
}

TEST(SemaTest, UndeclaredSet) {
  analyzeError("#pragma commset member(NOSET)\nvoid f() { }\n",
               "undeclared COMMSET");
}

TEST(SemaTest, PredicateArityMismatch) {
  analyzeError("#pragma commset decl(S)\n"
               "#pragma commset predicate(S, (int a), (int b), a != b)\n"
               "#pragma commset member(S(x, y))\n"
               "void f(int x, int y) { }\n",
               "expects 1 arguments, member supplies 2");
}

TEST(SemaTest, PredicateMustBePure) {
  analyzeError("int g;\n"
               "#pragma commset decl(S)\n"
               "#pragma commset predicate(S, (int a), (int b), a != g)\n",
               "must be pure");
}

TEST(SemaTest, PredicateParamListLengths) {
  analyzeError("#pragma commset decl(S)\n"
               "#pragma commset predicate(S, (int a), (int b, int c), 1)\n",
               "same length");
}

TEST(SemaTest, InterfaceArgMustBeParam) {
  analyzeError("#pragma commset decl(S)\n"
               "#pragma commset predicate(S, (int a), (int b), a != b)\n"
               "#pragma commset member(S(z))\n"
               "void f(int x) { }\n",
               "must name a parameter");
}

TEST(SemaTest, SelfWithArgsRejected) {
  analyzeError("#pragma commset member(SELF(x))\nvoid f(int x) { }\n",
               "implicit SELF set cannot take predicate arguments");
}

TEST(SemaTest, ReturnInsideCommutativeBlock) {
  analyzeError("#pragma commset decl(S)\n"
               "int f() {\n"
               "  #pragma commset member(S)\n"
               "  { return 1; }\n"
               "}\n",
               "return cannot appear inside a commutative block");
}

TEST(SemaTest, BreakEscapingCommutativeBlock) {
  analyzeError("#pragma commset decl(S)\n"
               "void f() {\n"
               "  while (1) {\n"
               "    #pragma commset member(S)\n"
               "    { break; }\n"
               "  }\n"
               "}\n",
               "cannot escape a commutative block");
}

TEST(SemaTest, BreakInsideLoopInsideCommutativeBlockOk) {
  analyzeOk("#pragma commset decl(S)\n"
            "void f() {\n"
            "  #pragma commset member(S)\n"
            "  { while (1) { break; } }\n"
            "}\n");
}

TEST(SemaTest, NamedBlockMustBeExported) {
  analyzeError("void f() {\n"
               "  #pragma commset namedblock(B)\n"
               "  { }\n"
               "}\n",
               "not exported via COMMSETNAMEDARG");
}

TEST(SemaTest, NamedArgWithoutBlock) {
  analyzeError("#pragma commset namedarg(B)\nvoid f() { }\n",
               "does not match any named block");
}

TEST(SemaTest, EnableUnknownNamedArg) {
  analyzeError("#pragma commset decl(S, self)\n"
               "void g() { }\n"
               "void f() {\n"
               "  #pragma commset enable(B: S)\n"
               "  g();\n"
               "}\n",
               "does not export a named block");
}

TEST(SemaTest, Md5sumStyleProgramAnalyzes) {
  // A close transliteration of the paper's Figure 1 running example.
  analyzeOk(
      "extern ptr fs_open(int fileid);\n"
      "extern int fs_read(ptr f, ptr buf, int n);\n"
      "extern void fs_close(ptr f);\n"
      "extern ptr buf_alloc(int n);\n"
      "extern void buf_free(ptr b);\n"
      "extern void md5_update(ptr buf, int n);\n"
      "extern void print_digest(int i);\n"
      "#pragma commset decl(FSET)\n"
      "#pragma commset decl(SSET, self)\n"
      "#pragma commset predicate(FSET, (int i1), (int i2), i1 != i2)\n"
      "#pragma commset predicate(SSET, (int i1), (int i2), i1 != i2)\n"
      "#pragma commset namedarg(READB)\n"
      "void mdfile(ptr f, int i) {\n"
      "  ptr buf = buf_alloc(4096);\n"
      "  int n = 1;\n"
      "  while (n > 0) {\n"
      "    #pragma commset namedblock(READB)\n"
      "    {\n"
      "      n = fs_read(f, buf, 4096);\n"
      "    }\n"
      "    md5_update(buf, n);\n"
      "  }\n"
      "  buf_free(buf);\n"
      "}\n"
      "void main_loop(int nfiles) {\n"
      "  for (int i = 0; i < nfiles; i++) {\n"
      "    ptr f;\n"
      "    #pragma commset member(SELF, FSET(i))\n"
      "    {\n"
      "      f = fs_open(i);\n"
      "    }\n"
      "    #pragma commset enable(READB: SSET(i), FSET(i))\n"
      "    mdfile(f, i);\n"
      "    #pragma commset member(SELF, FSET(i))\n"
      "    {\n"
      "      print_digest(i);\n"
      "      fs_close(f);\n"
      "    }\n"
      "  }\n"
      "}\n");
}

} // namespace
