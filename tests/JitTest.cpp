//===- JitTest.cpp - Native backend and arithmetic-edge tests -------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Covers the DESIGN.md §8 contract from both sides:
//
//  * the interpreter's defined arithmetic-edge semantics (INT64_MIN / -1,
//    x / 0, wrapping add/sub/mul/neg, IEEE float div/rem) — these tests run
//    on every host, JIT or not;
//  * the x86-64 backend producing bit-identical results for the same edge
//    matrix, the unsupported-function interpreter fallback, the W^X page
//    lifecycle, and backend-attached parallel execution.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Exec/Interpreter.h"
#include "commset/Exec/JitBackend.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Exec/ThreadedPlatform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

using namespace commset;

namespace {

std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C.get(), nullptr) << Diags.str();
  return C;
}

/// Runs \p Fn sequentially, optionally through \p Backend.
RtValue runWith(Compilation &C, const std::string &Fn,
                std::vector<RtValue> Args,
                const ExecBackend *Backend = nullptr) {
  NativeRegistry Natives;
  auto Globals = makeGlobalImage(C.module());
  Interpreter Interp(C.module(), Natives, Globals.data(), {}, nullptr, 0,
                     Backend);
  Function *F = C.module().findFunction(Fn);
  EXPECT_NE(F, nullptr);
  return Interp.call(F, Args);
}

constexpr int64_t IMin = std::numeric_limits<int64_t>::min();
constexpr int64_t IMax = std::numeric_limits<int64_t>::max();

/// Two-operand integer kernels, one per opcode under test. The operands
/// arrive as arguments so neither the front end nor the predicate
/// const-folder can pre-compute the edge case away.
const char *IntKernels = "int kdiv(int a, int b) { return a / b; }\n"
                         "int krem(int a, int b) { return a % b; }\n"
                         "int kadd(int a, int b) { return a + b; }\n"
                         "int ksub(int a, int b) { return a - b; }\n"
                         "int kmul(int a, int b) { return a * b; }\n"
                         "int kneg(int a, int b) { return -a + b * 0; }\n";

struct IntCase {
  const char *Fn;
  int64_t A, B, Want;
};

const IntCase IntEdgeCases[] = {
    // The regression at the heart of this PR: INT64_MIN / -1 used to trap
    // (SIGFPE on x86, UB in C++); it is now defined to wrap to INT64_MIN,
    // and INT64_MIN % -1 is 0.
    {"kdiv", IMin, -1, IMin},
    {"krem", IMin, -1, 0},
    // Division by zero yields 0 (both quotient and remainder).
    {"kdiv", 7, 0, 0},
    {"krem", 7, 0, 0},
    {"kdiv", IMin, 0, 0},
    {"krem", IMin, 0, 0},
    // Ordinary signed division still truncates toward zero.
    {"kdiv", -7, 2, -3},
    {"krem", -7, 2, -1},
    {"kdiv", 7, -2, -3},
    {"krem", 7, -2, 1},
    // Two's-complement wraparound on the open arithmetic ops.
    {"kadd", IMax, 1, IMin},
    {"kadd", IMin, -1, IMax},
    {"ksub", IMin, 1, IMax},
    {"ksub", 0, IMin, IMin},
    {"kmul", IMax, 2, -2},
    {"kmul", IMin, -1, IMin},
    {"kneg", IMin, 0, IMin},
    {"kneg", IMax, 0, IMin + 1},
};

TEST(ArithEdgeTest, IntEdgeCasesInterp) {
  auto C = compileOk(IntKernels);
  for (const IntCase &TC : IntEdgeCases) {
    RtValue R = runWith(*C, TC.Fn,
                        {RtValue::ofInt(TC.A), RtValue::ofInt(TC.B)});
    EXPECT_EQ(R.I, TC.Want) << TC.Fn << "(" << TC.A << ", " << TC.B << ")";
  }
}

/// Float kernels; the result is returned as raw bits via the frame so NaN
/// payloads compare exactly.
const char *FloatKernels =
    "double fdiv(double a, double b) { return a / b; }\n"
    "double frem(double a, double b) { return a % b; }\n"
    "int flt(double a, double b) { return a < b; }\n"
    "int fle(double a, double b) { return a <= b; }\n"
    "int feq(double a, double b) { return a == b; }\n"
    "int fne(double a, double b) { return a != b; }\n"
    "int fgt(double a, double b) { return a > b; }\n"
    "int fge(double a, double b) { return a >= b; }\n";

const double FloatEdgeOperands[] = {
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::denorm_min(),
    std::numeric_limits<double>::max(),
};

TEST(ArithEdgeTest, FloatDivRemAreIeeeInterp) {
  auto C = compileOk(FloatKernels);
  for (double A : FloatEdgeOperands) {
    for (double B : FloatEdgeOperands) {
      RtValue Div = runWith(*C, "fdiv",
                            {RtValue::ofDouble(A), RtValue::ofDouble(B)});
      double WantDiv = A / B;
      if (std::isnan(WantDiv))
        EXPECT_TRUE(std::isnan(Div.D)) << A << " / " << B;
      else
        EXPECT_EQ(Div.D, WantDiv) << A << " / " << B;
      RtValue Rem = runWith(*C, "frem",
                            {RtValue::ofDouble(A), RtValue::ofDouble(B)});
      double WantRem = std::fmod(A, B);
      if (std::isnan(WantRem))
        EXPECT_TRUE(std::isnan(Rem.D)) << A << " % " << B;
      else
        EXPECT_EQ(Rem.D, WantRem) << A << " % " << B;
    }
  }
}

//===----------------------------------------------------------------------===//
// JIT backend (x86-64 hosts with COMMSET_JIT compiled in)
//===----------------------------------------------------------------------===//

#define SKIP_WITHOUT_JIT()                                                     \
  do {                                                                         \
    if (!JitBackend::supported())                                              \
      GTEST_SKIP() << "jit backend not supported on this host/build";          \
  } while (0)

TEST(JitTest, IntEdgeCasesMatchInterp) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(IntKernels);
  auto Jit = JitBackend::create(C->module());
  ASSERT_NE(Jit.get(), nullptr);
  EXPECT_EQ(Jit->fallbackCount(), 0u);
  for (const IntCase &TC : IntEdgeCases) {
    std::vector<RtValue> Args = {RtValue::ofInt(TC.A), RtValue::ofInt(TC.B)};
    RtValue Native = runWith(*C, TC.Fn, Args, Jit.get());
    RtValue Interp = runWith(*C, TC.Fn, Args);
    EXPECT_EQ(Native.I, TC.Want) << TC.Fn << "(" << TC.A << ", " << TC.B
                                 << ") native";
    EXPECT_EQ(Native.I, Interp.I) << TC.Fn << "(" << TC.A << ", " << TC.B
                                  << ") differential";
  }
}

TEST(JitTest, FloatEdgeMatrixMatchesInterpBitForBit) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(FloatKernels);
  auto Jit = JitBackend::create(C->module());
  ASSERT_NE(Jit.get(), nullptr);
  const char *Fns[] = {"fdiv", "frem", "flt", "fle", "feq",
                       "fne",  "fgt",  "fge"};
  for (const char *Fn : Fns) {
    for (double A : FloatEdgeOperands) {
      for (double B : FloatEdgeOperands) {
        std::vector<RtValue> Args = {RtValue::ofDouble(A),
                                     RtValue::ofDouble(B)};
        RtValue Native = runWith(*C, Fn, Args, Jit.get());
        RtValue Interp = runWith(*C, Fn, Args);
        // Bit compare covers NaN-result cases and the sign of zero at once.
        EXPECT_EQ(Native.Bits, Interp.Bits)
            << Fn << "(" << A << ", " << B << ")";
      }
    }
  }
}

TEST(JitTest, NanComparisonsAreUnordered) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(FloatKernels);
  auto Jit = JitBackend::create(C->module());
  ASSERT_NE(Jit.get(), nullptr);
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  auto run = [&](const char *Fn, double A, double B) {
    return runWith(*C, Fn, {RtValue::ofDouble(A), RtValue::ofDouble(B)},
                   Jit.get())
        .I;
  };
  EXPECT_EQ(run("feq", NaN, NaN), 0);
  EXPECT_EQ(run("fne", NaN, NaN), 1);
  EXPECT_EQ(run("flt", NaN, 1.0), 0);
  EXPECT_EQ(run("fle", 1.0, NaN), 0);
  EXPECT_EQ(run("fgt", NaN, NaN), 0);
  EXPECT_EQ(run("fge", NaN, 0.0), 0);
}

TEST(JitTest, DenyListedFunctionFallsBackToInterpreter) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk("int helper(int x) { return x * 3 + 1; }\n"
                     "int caller(int n) {\n"
                     "  int sum = 0;\n"
                     "  for (int i = 0; i < n; i = i + 1) sum += helper(i);\n"
                     "  return sum;\n"
                     "}\n");
  JitOptions Opts;
  Opts.DenyFunctions = {"helper"};
  auto Jit = JitBackend::create(C->module(), Opts);
  ASSERT_NE(Jit.get(), nullptr);
  const Function *Helper = C->module().findFunction("helper");
  const Function *Caller = C->module().findFunction("caller");
  ASSERT_NE(Helper, nullptr);
  ASSERT_NE(Caller, nullptr);
  // The denied function has no native entry; its caller does. The native
  // caller's Call instruction escapes to the runtime, which interprets the
  // callee — the mixed-mode chain must still be exact.
  EXPECT_EQ(Jit->entryFor(Helper), nullptr);
  EXPECT_NE(Jit->entryFor(Caller), nullptr);
  EXPECT_GE(Jit->fallbackCount(), 1u);
  RtValue Native = runWith(*C, "caller", {RtValue::ofInt(10)}, Jit.get());
  RtValue Interp = runWith(*C, "caller", {RtValue::ofInt(10)});
  EXPECT_EQ(Native.I, Interp.I);
  EXPECT_EQ(Native.I, 3 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9) + 10);
}

/// Counts writable+executable and executable mappings in /proc/self/maps.
/// Returns false if the file is unavailable (non-Linux).
bool scanMaps(unsigned &RwxOut, unsigned &ExecOut) {
  std::ifstream Maps("/proc/self/maps");
  if (!Maps.is_open())
    return false;
  RwxOut = ExecOut = 0;
  std::string Line;
  while (std::getline(Maps, Line)) {
    // Address perms offset ... ; perms is the second field, e.g. "r-xp".
    size_t Sp = Line.find(' ');
    if (Sp == std::string::npos || Sp + 4 > Line.size())
      continue;
    std::string Perms = Line.substr(Sp + 1, 4);
    if (Perms.size() == 4 && Perms[2] == 'x') {
      ++ExecOut;
      if (Perms[1] == 'w')
        ++RwxOut;
    }
  }
  return true;
}

TEST(JitTest, PageLifecycleIsWxorXAndLeakFree) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(IntKernels);
  unsigned RwxBefore = 0, ExecBefore = 0;
  const bool HaveMaps = scanMaps(RwxBefore, ExecBefore);

  for (int I = 0; I < 64; ++I) {
    auto Jit = JitBackend::create(C->module());
    ASSERT_NE(Jit.get(), nullptr);
    EXPECT_GT(Jit->codeBytes(), 0u);
    // Sealed code must execute while the backend is alive...
    RtValue R = runWith(*C, "kadd", {RtValue::ofInt(I), RtValue::ofInt(1)},
                        Jit.get());
    EXPECT_EQ(R.I, I + 1);
    if (HaveMaps) {
      unsigned Rwx = 0, Exec = 0;
      ASSERT_TRUE(scanMaps(Rwx, Exec));
      // ... and no mapping is ever simultaneously writable and executable.
      EXPECT_EQ(Rwx, 0u) << "W^X violated: rwxp mapping present";
    }
  } // ... and be unmapped on destruction.

  if (HaveMaps) {
    unsigned RwxAfter = 0, ExecAfter = 0;
    ASSERT_TRUE(scanMaps(RwxAfter, ExecAfter));
    EXPECT_EQ(RwxAfter, RwxBefore);
    // 64 creates/destroys must not accumulate executable mappings.
    EXPECT_LE(ExecAfter, ExecBefore + 1);
  }
}

TEST(JitTest, EmptyNativeModuleReturnsNull) {
  SKIP_WITHOUT_JIT();
  // Every function denied -> nothing to emit -> no backend (callers then
  // run fully interpreted instead of paying an empty code page).
  auto C = compileOk("int f(int a) { return a + 1; }");
  JitOptions Opts;
  Opts.DenyFunctions = {"f"};
  auto Jit = JitBackend::create(C->module(), Opts);
  EXPECT_EQ(Jit.get(), nullptr);
}

/// A small DOALL loop over harness natives: threaded parallel execution
/// with the backend attached must reproduce the interpreter's result.
const char *DoallSource =
    "int gsum = 0;\n"
    "extern int work(int x);\n"
    "#pragma commset effects(work, pure)\n"
    "#pragma commset member(SELF)\n"
    "void bump(int v) { gsum = gsum + v; }\n"
    "int main_loop(int n) {\n"
    "  for (int i = 0; i < n; i = i + 1) {\n"
    "    int t = work(i);\n"
    "    int e = (-9223372036854775807 - 1) / (i % 3 - 1);\n"
    "    bump(t + e % 97);\n"
    "  }\n"
    "  return gsum;\n"
    "}\n";

RunOutcome runDoall(Compilation &C, const ExecBackend *Backend,
                    bool Simulate = false) {
  DiagnosticEngine Diags;
  auto T = C.analyzeLoop("main_loop", Diags);
  EXPECT_NE(T.get(), nullptr) << Diags.str();
  PlanOptions PO;
  PO.NumThreads = 4;
  PO.Sync = SyncMode::Mutex;
  auto Schemes = buildAllSchemes(C, *T, PO);
  const SchemeReport *Doall = nullptr;
  for (const SchemeReport &R : Schemes)
    if (R.Kind == Strategy::Doall && R.Applicable)
      Doall = &R;
  EXPECT_NE(Doall, nullptr);
  NativeRegistry Natives;
  Natives.add("work", [](const RtValue *Args, unsigned) {
    return RtValue::ofInt((Args[0].I * 2654435761u) % 1000);
  });
  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = Simulate;
  Config.Backend = Backend;
  return runScheme(C, T->F, {RtValue::ofInt(64)}, Natives, Config);
}

TEST(JitTest, ThreadedDoallMatchesInterp) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(DoallSource);
  auto Jit = JitBackend::create(C->module());
  ASSERT_NE(Jit.get(), nullptr);
  RunOutcome Interp = runDoall(*C, nullptr);
  ASSERT_EQ(Interp.Status, RunStatus::Ok) << Interp.Diagnostic;
  // Several rounds: a codegen bug that only corrupts state under real
  // concurrency will not show on every schedule.
  for (int Round = 0; Round < 5; ++Round) {
    RunOutcome Native = runDoall(*C, Jit.get());
    ASSERT_EQ(Native.Status, RunStatus::Ok) << Native.Diagnostic;
    EXPECT_EQ(Native.Result.I, Interp.Result.I) << "round " << Round;
  }
}

TEST(JitTest, BackendPlusSimulateIsRejected) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(DoallSource);
  auto Jit = JitBackend::create(C->module());
  ASSERT_NE(Jit.get(), nullptr);
  RunOutcome Out = runDoall(*C, Jit.get(), /*Simulate=*/true);
  EXPECT_EQ(Out.Status, RunStatus::InternalError);
  EXPECT_NE(Out.Diagnostic.find("simulate"), std::string::npos)
      << Out.Diagnostic;
}

TEST(JitTest, SequentialPlanRunsWholeFunctionNative) {
  SKIP_WITHOUT_JIT();
  auto C = compileOk(DoallSource);
  auto Jit = JitBackend::create(C->module());
  ASSERT_NE(Jit.get(), nullptr);
  NativeRegistry Natives;
  Natives.add("work", [](const RtValue *Args, unsigned) {
    return RtValue::ofInt((Args[0].I * 2654435761u) % 1000);
  });
  RunConfig Config;
  Config.Plan = nullptr; // Sequential.
  Config.Simulate = false;
  RunOutcome Interp = runScheme(*C, C->module().findFunction("main_loop"),
                                {RtValue::ofInt(64)}, Natives, Config);
  Config.Backend = Jit.get();
  RunOutcome Native = runScheme(*C, C->module().findFunction("main_loop"),
                                {RtValue::ofInt(64)}, Natives, Config);
  ASSERT_EQ(Interp.Status, RunStatus::Ok) << Interp.Diagnostic;
  ASSERT_EQ(Native.Status, RunStatus::Ok) << Native.Diagnostic;
  EXPECT_EQ(Native.Result.I, Interp.Result.I);
}

} // namespace
