//===- LintTest.cpp - CommLint checker unit tests -------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// One test per CommLint verdict class, each compiling a small CSet-C
// program, planning its loop, and asserting the exact CL code (or its
// absence) on the lowered plan. The plan-consistency cases (CL040/CL041)
// corrupt the analysis results the way a buggy transform would, since the
// pipeline itself never produces them.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/Lint.h"
#include "commset/Driver/Runner.h"

#include <gtest/gtest.h>

using namespace commset;

namespace {

struct Planned {
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  ParallelPlan Plan;
  bool Ok = false;
};

/// Compiles \p Source, analyzes main_loop, and keeps the plan built by
/// \p Want under \p Sync with 4 workers.
Planned plan(const std::string &Source, Strategy Want,
             SyncMode Sync = SyncMode::Mutex) {
  Planned P;
  DiagnosticEngine Diags;
  P.C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(P.C, nullptr) << Diags.str();
  if (!P.C)
    return P;
  P.T = P.C->analyzeLoop("main_loop", Diags);
  EXPECT_NE(P.T, nullptr) << Diags.str();
  if (!P.T)
    return P;
  PlanOptions PO;
  PO.NumThreads = 4;
  PO.Sync = Sync;
  for (const SchemeReport &R : buildAllSchemes(*P.C, *P.T, PO))
    if (R.Kind == Want && R.Applicable && R.Plan) {
      P.Plan = *R.Plan;
      P.Ok = true;
      return P;
    }
  ADD_FAILURE() << "strategy " << strategyName(Want)
                << " not applicable to the test loop";
  return P;
}

TEST(LintTest, CleanSelfReductionIsRaceFree) {
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(work(i));
  }
  return acc;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.raceFree()) << R.str();
  EXPECT_EQ(R.errors(), 0u) << R.str();
  EXPECT_EQ(R.exitCode(), 0) << R.str();
}

TEST(LintTest, NosyncMemberWritingGlobalIsCL001) {
  // NOSYNC waives compiler locks, but the member mutates an interpreter
  // global with no internal synchronization to fall back on: under a DOALL
  // plan two workers race on `acc`.
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset decl(NS, self)
#pragma commset nosync(NS)
#pragma commset member(NS)
void tally(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    tally(work(i));
  }
  return acc;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL001")) << R.str();
  EXPECT_FALSE(R.raceFree());
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, SuppressionPragmaSilencesCode) {
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset decl(NS, self)
#pragma commset nosync(NS)
#pragma commset lint_suppress(CL001)
#pragma commset member(NS)
void tally(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    tally(work(i));
  }
  return acc;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_FALSE(R.hasCode("CL001")) << R.str();
}

TEST(LintTest, OrderedSelfWriteIsCL020) {
  Planned P = plan(R"(
int last = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void record(int v) { last = v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    record(work(i));
  }
  return last;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL020")) << R.str();
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, OrderedGroupPairWriteIsCL021) {
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset decl(G)
#pragma commset member(SELF, G)
void add(int v) { acc = acc + v; }
#pragma commset member(SELF, G)
void set_last(int v) { acc = v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(work(i));
    set_last(work(i + 1));
  }
  return acc;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL021")) << R.str();
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, UnannotatedReductionSuggestsCL030) {
  // No parallel strategy applies (the carried dependence on `total` blocks
  // DOALL), so the audit runs on the sequential plan and the suggestion is
  // the only finding.
  Planned P = plan(R"(
int total = 0;
extern int work(int x);
#pragma commset effects(work, pure)
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    total = total + work(i);
  }
  return total;
}
)",
                   Strategy::Sequential);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL030")) << R.str();
  EXPECT_EQ(R.errors(), 0u) << R.str();
  EXPECT_EQ(R.exitCode(), 0) << R.str();
}

TEST(LintTest, ClearedJustificationIsCL040) {
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(work(i));
  }
  return acc;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  // Simulate a transform that relaxed an edge without recording (or while
  // corrupting) the licensing declaration.
  bool Cleared = false;
  for (PDGEdge &E : P.T->G.Edges)
    if (E.Kind == DepKind::Memory && E.Comm != CommAnnotation::None) {
      E.JustifyingSet = ~0u;
      Cleared = true;
    }
  ASSERT_TRUE(Cleared) << "expected at least one relaxed Memory edge";
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL040")) << R.str();
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, NonAscendingLockRanksAreCL041) {
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(work(i));
  }
  return acc;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  ASSERT_FALSE(P.Plan.MemberSync.empty());
  // Corrupt the sync plan: a descending rank pair admits an acquisition
  // cycle against any member taking the same locks in declared order.
  P.Plan.MemberSync.begin()->second.LockRanks = {2, 1};
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL041")) << R.str();
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, PrivatizedReductionDischargesCL001) {
  // The same NOSYNC-free reduction races (CL001) when the plan holds no
  // lock, but privatizing the member moves its writes onto per-worker
  // replicas: the shared global is never touched concurrently and the
  // race finding must vanish — without tripping the CL050 proof audit.
  const char *Source = R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(work(i));
  }
  return acc;
}
)";
  Planned Unlocked = plan(Source, Strategy::Doall, SyncMode::None);
  ASSERT_TRUE(Unlocked.Ok);
  LintResult RU = runLint(*Unlocked.C, *Unlocked.T, Unlocked.Plan);
  EXPECT_TRUE(RU.hasCode("CL001")) << RU.str();

  Planned Priv = plan(Source, Strategy::Doall, SyncMode::Priv);
  ASSERT_TRUE(Priv.Ok);
  ASSERT_FALSE(Priv.Plan.PrivGlobals.empty())
      << "the planner must privatize the provable reduction";
  LintResult RP = runLint(*Priv.C, *Priv.T, Priv.Plan);
  EXPECT_FALSE(RP.hasCode("CL001")) << RP.str();
  EXPECT_FALSE(RP.hasCode("CL050")) << RP.str();
  EXPECT_TRUE(RP.raceFree()) << RP.str();
}

TEST(LintTest, PrivatizedMemberWithoutProofIsCL050) {
  // Corrupt the plan the way a buggy planner would: mark a member whose
  // write is an overwrite (not an add-reduction) as privatized. Replica
  // merging would not reproduce the sequential result, so the consistency
  // audit must flag it.
  Planned P = plan(R"(
int last = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void record(int v) { last = v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    record(work(i));
  }
  return last;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  ASSERT_TRUE(P.Plan.MemberSync.count("record"));
  P.Plan.MemberSync["record"].Privatized = true;
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL050")) << R.str();
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, PrivatizedWriteOutsidePlanSlotSetIsCL050) {
  // A privatized member whose written global is missing from the plan's
  // replica slot set would update the shared location lock free: the
  // second CL050 variant.
  Planned P = plan(R"(
int acc = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(work(i));
  }
  return acc;
}
)",
                   Strategy::Doall, SyncMode::Priv);
  ASSERT_TRUE(P.Ok);
  ASSERT_FALSE(P.Plan.PrivGlobals.empty());
  P.Plan.PrivGlobals.clear();
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  EXPECT_TRUE(R.hasCode("CL050")) << R.str();
  EXPECT_EQ(R.exitCode(), 2);
}

TEST(LintTest, LintResultOrdersErrorsFirst) {
  Planned P = plan(R"(
int last = 0;
int total = 0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset member(SELF)
void record(int v) { last = v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    record(work(i));
  }
  return last;
}
)",
                   Strategy::Doall);
  ASSERT_TRUE(P.Ok);
  LintResult R = runLint(*P.C, *P.T, P.Plan);
  ASSERT_FALSE(R.Diags.empty());
  for (size_t I = 0; I + 1 < R.Diags.size(); ++I)
    EXPECT_GE(static_cast<int>(R.Diags[I].Severity),
              static_cast<int>(R.Diags[I + 1].Severity));
}

TEST(LintTest, DedupKeySeparatesSameSiteFindings) {
  // Regression: the cross-plan dedup key once hashed only (code, location,
  // message), so two findings differing in severity (a CommProve downgrade
  // vs the original error) or in structured subjects collapsed into one.
  LintDiagnostic A;
  A.Code = "CL020";
  A.Severity = LintSeverity::Error;
  A.Loc.Line = 4;
  A.Loc.Col = 1;
  A.Message = "order-sensitive write";
  A.Subject = "scale_acc";
  A.Subject2 = "scale_acc";

  LintDiagnostic Downgraded = A;
  Downgraded.Severity = LintSeverity::Note;
  EXPECT_NE(lint::dedupKey(A), lint::dedupKey(Downgraded));

  LintDiagnostic OtherPair = A;
  OtherPair.Subject2 = "mirror_y";
  EXPECT_NE(lint::dedupKey(A), lint::dedupKey(OtherPair));

  LintDiagnostic Same = A;
  EXPECT_EQ(lint::dedupKey(A), lint::dedupKey(Same));
}

} // namespace
