//===- LowerTest.cpp - AST->IR lowering tests -----------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "commset/IR/Printer.h"

#include <gtest/gtest.h>

using namespace commset;
using namespace commset::test;

namespace {

TEST(LowerTest, SimpleFunction) {
  auto C = compile("int add(int a, int b) { return a + b; }");
  ASSERT_TRUE(C.Mod);
  Function *F = C.Mod->findFunction("add");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->NumParams, 2u);
  EXPECT_EQ(F->ReturnType, IRType::I64);
  // Entry block plus the dead continuation block opened after `return`.
  ASSERT_GE(F->Blocks.size(), 1u);
  // ldloc a, ldloc b, add, ret.
  EXPECT_EQ(F->Blocks[0]->Instrs.size(), 4u);
  EXPECT_EQ(F->Blocks[0]->Instrs[2]->op(), Opcode::Add);
  EXPECT_EQ(F->Blocks[0]->Instrs[3]->op(), Opcode::Ret);
}

TEST(LowerTest, GlobalInitAndAccess) {
  auto C = compile("int g = -3;\n"
                   "double h = 2.5;\n"
                   "void f() { g = g + 1; }\n");
  ASSERT_TRUE(C.Mod);
  ASSERT_EQ(C.Mod->Globals.size(), 2u);
  EXPECT_EQ(C.Mod->Globals[0].IntInit, -3);
  EXPECT_DOUBLE_EQ(C.Mod->Globals[1].FloatInit, 2.5);
  Function *F = C.Mod->findFunction("f");
  bool HasLoadGlobal = false, HasStoreGlobal = false;
  for (Instruction *Instr : F->instructions()) {
    HasLoadGlobal |= Instr->op() == Opcode::LoadGlobal;
    HasStoreGlobal |= Instr->op() == Opcode::StoreGlobal;
  }
  EXPECT_TRUE(HasLoadGlobal);
  EXPECT_TRUE(HasStoreGlobal);
}

TEST(LowerTest, NumericPromotion) {
  auto C = compile("double f(int a) { return a + 0.5; }");
  ASSERT_TRUE(C.Mod);
  Function *F = C.Mod->findFunction("f");
  bool HasIntToFp = false;
  for (Instruction *Instr : F->instructions()) {
    HasIntToFp |= Instr->op() == Opcode::IntToFp;
    if (Instr->op() == Opcode::Add)
      EXPECT_EQ(Instr->type(), IRType::F64);
  }
  EXPECT_TRUE(HasIntToFp);
}

TEST(LowerTest, ShortCircuitCreatesControlFlow) {
  auto C = compile("extern int probe(int x);\n"
                   "int f(int a) { return a > 0 && probe(a); }");
  ASSERT_TRUE(C.Mod);
  Function *F = C.Mod->findFunction("f");
  // Short-circuit must not call probe when a <= 0: the call lives in a
  // separate block.
  EXPECT_GE(F->Blocks.size(), 4u);
}

TEST(LowerTest, ForLoopShape) {
  auto C = compile("extern void sink(int v);\n"
                   "void f(int n) { for (int i = 0; i < n; i++) sink(i); }");
  ASSERT_TRUE(C.Mod);
  Function *F = C.Mod->findFunction("f");
  // entry, head, body, step, exit at minimum.
  EXPECT_GE(F->Blocks.size(), 5u);
  // The loop has a back edge: some block branches to an earlier block.
  bool HasBackEdge = false;
  for (const auto &BB : F->Blocks)
    for (BasicBlock *Succ : BB->successors())
      HasBackEdge |= Succ->Id <= BB->Id;
  EXPECT_TRUE(HasBackEdge);
}

TEST(LowerTest, BreakContinue) {
  auto C = compile("extern void sink(int v);\n"
                   "void f(int n) {\n"
                   "  for (int i = 0; i < n; i++) {\n"
                   "    if (i == 3) continue;\n"
                   "    if (i == 7) break;\n"
                   "    sink(i);\n"
                   "  }\n"
                   "}\n");
  ASSERT_TRUE(C.Mod); // Verifier inside compile() checks structure.
}

TEST(LowerTest, NativeEffectsLowered) {
  auto C = compile("extern int rng_next();\n"
                   "extern void log_pkt(int x);\n"
                   "#pragma commset effects(rng_next, reads(rng), "
                   "writes(rng))\n"
                   "void f() { log_pkt(rng_next()); }\n");
  ASSERT_TRUE(C.Mod);
  NativeDecl *Rng = C.Mod->findNative("rng_next");
  ASSERT_NE(Rng, nullptr);
  EXPECT_FALSE(Rng->Effects.World);
  EXPECT_EQ(Rng->Effects.ReadClasses.size(), 1u);
  EXPECT_EQ(Rng->Effects.WriteClasses.size(), 1u);
  NativeDecl *Log = C.Mod->findNative("log_pkt");
  ASSERT_NE(Log, nullptr);
  EXPECT_TRUE(Log->Effects.World); // No effects declared -> world.
}

TEST(LowerTest, RegionExtractionBasic) {
  auto C = compile("#pragma commset decl(S)\n"
                   "extern int get(int k);\n"
                   "void f(int n) {\n"
                   "  for (int i = 0; i < n; i++) {\n"
                   "    int v;\n"
                   "    #pragma commset member(S)\n"
                   "    {\n"
                   "      v = get(i);\n"
                   "    }\n"
                   "  }\n"
                   "}\n");
  ASSERT_TRUE(C.Mod);
  // One region function extracted.
  Function *Region = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->IsRegion)
      Region = F.get();
  ASSERT_NE(Region, nullptr);
  EXPECT_EQ(Region->ReturnType, IRType::I64); // live-out v.
  ASSERT_EQ(Region->Members.size(), 1u);
  EXPECT_EQ(Region->Members[0].SetName, "S");
  // Region takes i (read inside).
  EXPECT_EQ(Region->NumParams, 1u);
  EXPECT_EQ(Region->Locals[0].Name, "i");
}

TEST(LowerTest, RegionPredicateArgsBecomeParams) {
  auto C = compile("#pragma commset decl(S)\n"
                   "#pragma commset predicate(S, (int a), (int b), a != b)\n"
                   "extern void touch();\n"
                   "void f(int n) {\n"
                   "  for (int i = 0; i < n; i++) {\n"
                   "    #pragma commset member(S(i))\n"
                   "    {\n"
                   "      touch();\n"
                   "    }\n"
                   "  }\n"
                   "}\n");
  ASSERT_TRUE(C.Mod);
  Function *Region = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->IsRegion)
      Region = F.get();
  ASSERT_NE(Region, nullptr);
  // i is a parameter even though the block never reads it.
  EXPECT_EQ(Region->NumParams, 1u);
  ASSERT_EQ(Region->Members.size(), 1u);
  ASSERT_EQ(Region->Members[0].ArgParams.size(), 1u);
  EXPECT_EQ(Region->Members[0].ArgParams[0], 0u);
}

TEST(LowerTest, RegionTwoLiveOutsRejected) {
  DiagnosticEngine Diags;
  auto P = Parser::parse("#pragma commset decl(S)\n"
                         "extern int get(int k);\n"
                         "void f() {\n"
                         "  int a; int b;\n"
                         "  #pragma commset member(S)\n"
                         "  {\n"
                         "    a = get(0);\n"
                         "    b = get(1);\n"
                         "  }\n"
                         "}\n",
                         Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  Sema S(*P, Diags);
  ASSERT_TRUE(S.run()) << Diags.str();
  ASSERT_TRUE(specializeNamedBlocks(*P, Diags));
  auto Mod = lowerProgram(*P, Diags);
  EXPECT_EQ(Mod.get(), nullptr);
  EXPECT_TRUE(Diags.contains("at most one live-out"));
}

TEST(LowerTest, NestedRegions) {
  auto C = compile("#pragma commset decl(S)\n"
                   "#pragma commset decl(T)\n"
                   "extern void touch(int k);\n"
                   "void f(int n) {\n"
                   "  #pragma commset member(S)\n"
                   "  {\n"
                   "    touch(0);\n"
                   "    #pragma commset member(T)\n"
                   "    {\n"
                   "      touch(1);\n"
                   "    }\n"
                   "  }\n"
                   "}\n");
  ASSERT_TRUE(C.Mod);
  unsigned Regions = 0;
  for (const auto &F : C.Mod->Functions)
    Regions += F->IsRegion;
  EXPECT_EQ(Regions, 2u);
}

TEST(LowerTest, EnabledCallInlinesNamedBlock) {
  auto C = compile(md5sumSource());
  ASSERT_TRUE(C.Mod);
  // The enabled mdfile call is inlined into main_loop; the READB named
  // block becomes a commutative region of main_loop, member of SSET and
  // FSET, bound to the client induction variable.
  Function *ReadRegion = nullptr;
  for (const auto &F : C.Mod->Functions) {
    if (!F->IsRegion || F->Name.find("main_loop") != 0)
      continue;
    for (const MemberInstance &MI : F->Members)
      if (MI.SetName == "SSET")
        ReadRegion = F.get();
  }
  ASSERT_NE(ReadRegion, nullptr);
  std::set<std::string> SetNames;
  for (const MemberInstance &MI : ReadRegion->Members)
    SetNames.insert(MI.SetName);
  EXPECT_TRUE(SetNames.count("SSET"));
  EXPECT_TRUE(SetNames.count("FSET"));
  // The predicate argument binds the client's `i`.
  for (const MemberInstance &MI : ReadRegion->Members) {
    if (MI.SetName != "FSET")
      continue;
    ASSERT_EQ(MI.ArgParams.size(), 1u);
    EXPECT_EQ(ReadRegion->Locals[MI.ArgParams[0]].Name, "i");
  }
}

TEST(LowerTest, Md5sumRegionInventory) {
  auto C = compile(md5sumSource());
  ASSERT_TRUE(C.Mod);
  // main_loop extracts three regions: the fopen block, the print+close
  // block, and the inlined READB block.
  unsigned MainRegions = 0;
  for (const auto &F : C.Mod->Functions)
    if (F->IsRegion && F->Name.find("main_loop") == 0)
      ++MainRegions;
  EXPECT_EQ(MainRegions, 3u);
  // The original mdfile keeps its un-enabled named block inline (no
  // members -> no region) and is unchanged.
  Function *Orig = C.Mod->findFunction("mdfile");
  ASSERT_NE(Orig, nullptr);
  EXPECT_TRUE(Orig->Members.empty());
}

TEST(LowerTest, PrinterProducesStableText) {
  auto C = compile("int add(int a, int b) { return a + b; }");
  ASSERT_TRUE(C.Mod);
  std::string Text = printModule(*C.Mod);
  EXPECT_NE(Text.find("func i64 add(i64 $a, i64 $b)"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("add i64"), std::string::npos);
}

} // namespace
