//===- PrivTest.cpp - Privatization (`priv` sync mode) tests --------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// The `priv` sync mode replaces locks on add-reduction members with
// per-worker shadow replicas merged at region exit. These tests pin the
// contract end to end: the planner's eligibility proof, deterministic
// merge order across thread counts (including float rounding), replica
// reset across reused WorkerPool regions, replica discard when a region
// faults before merging, the frontend rejection of a forced-priv request
// the proof cannot discharge, and race-freedom of concurrent replica
// updates (meaningful under TSan).
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Runtime/FaultInjector.h"
#include "commset/Runtime/Privatization.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace commset;

namespace {

/// Privatizable histogram: both written globals are provable add-reductions
/// (one int, one double, so the merge runs in both domains) and the loop
/// touches them only through the member.
const char *privSource() {
  return R"(
int total = 0;
double scale = 0.0;
extern int work(int x);
#pragma commset effects(work, pure)
#pragma commset decl(HIST, self)
#pragma commset member(HIST)
void bump(int v) {
  total = total + v;
  scale = scale + 0.25;
}
double run(int n) {
  for (int i = 0; i < n; i = i + 1) {
    bump(work(i));
  }
  return scale + total;
}
)";
}

std::unique_ptr<Compilation> compileOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_NE(C.get(), nullptr) << Diags.str();
  return C;
}

NativeRegistry privNatives() {
  NativeRegistry Natives;
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) { return RtValue::ofInt(Args[0].I); },
      /*FixedCostNs=*/2000);
  return Natives;
}

const SchemeReport *findScheme(const std::vector<SchemeReport> &Schemes,
                               Strategy Kind) {
  for (const SchemeReport &R : Schemes)
    if (R.Kind == Kind)
      return &R;
  return nullptr;
}

/// Builds the privatized DOALL plan for privSource() at \p Threads,
/// asserting the planner actually proved and privatized the member.
struct PrivPlan {
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  ParallelPlan Plan;
};

PrivPlan buildPrivPlan(unsigned Threads) {
  PrivPlan R;
  R.C = compileOk(privSource());
  DiagnosticEngine Diags;
  R.T = R.C->analyzeLoop("run", Diags);
  EXPECT_NE(R.T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = SyncMode::Priv;
  auto Schemes = buildAllSchemes(*R.C, *R.T, Opts);
  const SchemeReport *Doall = findScheme(Schemes, Strategy::Doall);
  EXPECT_TRUE(Doall && Doall->Applicable && Doall->Plan)
      << (Doall ? Doall->WhyNot : "no DOALL report");
  R.Plan = *Doall->Plan;
  return R;
}

/// Sequential reference for privSource() with work(i) = i.
double privReference(int64_t N) {
  return 0.25 * static_cast<double>(N) +
         static_cast<double>(N * (N - 1) / 2);
}

} // namespace

//===----------------------------------------------------------------------===//
// Planner eligibility
//===----------------------------------------------------------------------===//

TEST(PrivPlanTest, PlannerPrivatizesProvableAddReduction) {
  PrivPlan P = buildPrivPlan(4);
  ASSERT_EQ(P.Plan.Sync, SyncMode::Priv);
  auto It = P.Plan.MemberSync.find("bump");
  ASSERT_NE(It, P.Plan.MemberSync.end());
  EXPECT_TRUE(It->second.Privatized)
      << "bump writes only add-reductions; the proof must go through";
  EXPECT_EQ(P.Plan.PrivGlobals.size(), 2u)
      << "both written globals (total, scale) must be replica slots";
}

TEST(PrivPlanTest, DirectLoopAccessDisqualifiesTheSlot) {
  // The loop reads `total` directly every iteration, so replicating it
  // would let the bare read observe partial sums: the planner must demote
  // the member to the ranked-mutex fallback instead of privatizing.
  auto C = compileOk(R"(
int total = 0;
extern void sink(int v);
#pragma commset effects(sink, pure)
#pragma commset decl(S, self)
#pragma commset member(S)
void bump(int v) { total = total + v; }
int run(int n) {
  for (int i = 0; i < n; i = i + 1) {
    bump(i);
    sink(total);
  }
  return total;
}
)");
  DiagnosticEngine Diags;
  auto T = C->analyzeLoop("run", Diags);
  ASSERT_NE(T.get(), nullptr) << Diags.str();
  PlanOptions Opts;
  Opts.NumThreads = 4;
  Opts.Sync = SyncMode::Priv;
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  for (const SchemeReport &R : Schemes) {
    if (!R.Plan)
      continue;
    EXPECT_TRUE(R.Plan->PrivGlobals.empty())
        << "a slot read directly by the loop must never be privatized";
    auto It = R.Plan->MemberSync.find("bump");
    if (It != R.Plan->MemberSync.end())
      EXPECT_FALSE(It->second.Privatized);
  }
}

//===----------------------------------------------------------------------===//
// Execution: deterministic merge, replica reuse, fault discard
//===----------------------------------------------------------------------===//

TEST(PrivExecTest, MergeMatchesSequentialAcrossThreadCounts) {
  constexpr int64_t N = 240;
  for (unsigned Threads : {2u, 4u, 8u}) {
    PrivPlan P = buildPrivPlan(Threads);
    NativeRegistry Natives = privNatives();
    RunConfig Config;
    Config.Plan = &P.Plan;
    Config.Simulate = false;
    RunOutcome Out = runScheme(*P.C, P.T->F, {RtValue::ofInt(N)}, Natives,
                               Config);
    EXPECT_EQ(Out.Status, RunStatus::Ok) << Out.Diagnostic;
    EXPECT_DOUBLE_EQ(Out.Result.D, privReference(N))
        << "threads=" << Threads;

    // Merge order is worker-major and fixed, so even the float rounding
    // must be bit-for-bit reproducible run over run at a fixed count.
    RunOutcome Again = runScheme(*P.C, P.T->F, {RtValue::ofInt(N)}, Natives,
                                 Config);
    EXPECT_EQ(Again.Status, RunStatus::Ok) << Again.Diagnostic;
    EXPECT_EQ(Out.Result.D, Again.Result.D)
        << "merge must be deterministic at threads=" << Threads;
  }
}

TEST(PrivExecTest, BackToBackRegionsReuseRowsCorrectly) {
  // The WorkerPool leases the same replica rows to consecutive regions;
  // each region's manager must start from the additive identity or the
  // second run double-counts the first.
  constexpr int64_t N = 96;
  PrivPlan P = buildPrivPlan(4);
  NativeRegistry Natives = privNatives();
  RunConfig Config;
  Config.Plan = &P.Plan;
  Config.Simulate = false;
  for (int Round = 0; Round < 3; ++Round) {
    RunOutcome Out = runScheme(*P.C, P.T->F, {RtValue::ofInt(N)}, Natives,
                               Config);
    EXPECT_EQ(Out.Status, RunStatus::Ok) << Out.Diagnostic;
    EXPECT_DOUBLE_EQ(Out.Result.D, privReference(N)) << "round " << Round;
  }
}

TEST(PrivExecTest, FaultMidRegionDiscardsReplicas) {
  // Every worker dies at its first checkpoint, so replicas hold partial
  // sums when the region unwinds. The resilient wrapper must discard them
  // (no merge) and the sequential re-execution must still produce the
  // exact reference — a leaked merge would double-count.
  constexpr int64_t N = 200;
  PrivPlan P = buildPrivPlan(4);
  NativeRegistry Natives = privNatives();

  FaultPolicy Policy;
  Policy.Seed = 11;
  Policy.Name = "kill-all-workers";
  Policy.TaskFailurePerMille = 1000;
  FaultInjector FI(Policy);
  ResilienceConfig RC;
  RC.Faults = &FI;

  RunConfig Config;
  Config.Plan = &P.Plan;
  Config.Simulate = false;
  Config.Resilience = &RC;
  RunOutcome Out =
      runScheme(*P.C, P.T->F, {RtValue::ofInt(N)}, Natives, Config);
  EXPECT_EQ(Out.Status, RunStatus::DegradedSequential) << Out.Diagnostic;
  EXPECT_EQ(Out.DegradedWhy, FaultKind::TaskFailure);
  EXPECT_DOUBLE_EQ(Out.Result.D, privReference(N))
      << "partial replica sums must not leak into the fallback run";
}

//===----------------------------------------------------------------------===//
// Frontend: forced priv without the proof
//===----------------------------------------------------------------------===//

TEST(PrivSemaTest, ForcedPrivOnNonReductionIsRejected) {
  std::string Source = R"(
int last = 0;
#pragma commset decl(S, self)
#pragma commset sync(S, priv)
#pragma commset member(S)
void put(int v) { last = v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    put(i);
  }
  return last;
}
)";
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_EQ(C.get(), nullptr);
  EXPECT_TRUE(Diags.contains(
      "COMMSET 'S' requests 'priv' synchronization but member 'put' is not "
      "a provable add-reduction"))
      << Diags.str();
  EXPECT_TRUE(Diags.contains("[CL050]")) << Diags.str();
}

//===----------------------------------------------------------------------===//
// PrivatizationManager unit behavior
//===----------------------------------------------------------------------===//

TEST(PrivRuntimeTest, StaleRowsAreZeroedOnReLease) {
  std::set<unsigned> Slots = {1};
  std::vector<bool> FloatSlot = {false, false};
  {
    // A "faulted" region: rows written, manager destroyed without merge.
    PrivatizationManager PM(Slots, 4, FloatSlot);
    for (unsigned W = 0; W < 4; ++W)
      PM.replica(W, 1) = RtValue::ofInt(99);
    EXPECT_FALSE(PM.merged());
  }
  PrivatizationManager PM(Slots, 4, FloatSlot);
  for (unsigned W = 0; W < 4; ++W)
    EXPECT_EQ(PM.replica(W, 1).I, 0)
        << "stale partial sums must not survive the re-lease";
}

TEST(PrivRuntimeTest, MergeOrderIsWorkerMajorAndReproducible) {
  // Two managers fed identical replica values must merge to bit-identical
  // float results: the worker-major order pins the rounding sequence.
  std::set<unsigned> Slots = {0};
  std::vector<bool> FloatSlot = {true};
  auto RunOnce = [&] {
    PrivatizationManager PM(Slots, 3, FloatSlot);
    PM.replica(0, 0) = RtValue::ofDouble(0.1);
    PM.replica(1, 0) = RtValue::ofDouble(1e16);
    PM.replica(2, 0) = RtValue::ofDouble(-1e16);
    std::vector<RtValue> Globals(1);
    Globals[0] = RtValue::ofDouble(0.0);
    PM.merge(Globals.data(), /*MasterTid=*/0);
    EXPECT_TRUE(PM.merged());
    return Globals[0].D;
  };
  double First = RunOnce();
  double Second = RunOnce();
  EXPECT_EQ(First, Second);
  // (0.0 + 0.1 + 1e16) - 1e16 loses the 0.1: the value itself witnesses
  // that worker 1 merged before worker 2, not just that both merged.
  EXPECT_EQ(First, (0.0 + 0.1 + 1e16) - 1e16);
}

TEST(PrivRuntimeTest, ConcurrentReplicaUpdatesAreRaceFree) {
  // Each worker hammers only its own row; under TSan this run must be
  // clean, and the merged totals prove no update was lost.
  constexpr unsigned Workers = 8;
  constexpr int64_t Iters = 20000;
  std::set<unsigned> Slots = {0, 2};
  std::vector<bool> FloatSlot = {false, false, false};
  PrivatizationManager PM(Slots, Workers, FloatSlot);
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([&PM, W] {
      for (int64_t I = 0; I < Iters; ++I) {
        PM.replica(W, 0).I += 1;
        PM.replica(W, 2).I += 2;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  std::vector<RtValue> Globals(3);
  Globals[0] = RtValue::ofInt(5);
  Globals[2] = RtValue::ofInt(7);
  PM.merge(Globals.data(), /*MasterTid=*/0);
  EXPECT_EQ(Globals[0].I, 5 + static_cast<int64_t>(Workers) * Iters);
  EXPECT_EQ(Globals[2].I, 7 + 2 * static_cast<int64_t>(Workers) * Iters);
}
