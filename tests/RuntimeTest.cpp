//===- RuntimeTest.cpp - Queue/lock/STM substrate tests -------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/Locks.h"
#include "commset/Runtime/SpscQueue.h"
#include "commset/Runtime/StealDeque.h"
#include "commset/Runtime/Stm.h"
#include "commset/Runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

using namespace commset;

namespace {

//===----------------------------------------------------------------------===//
// SPSC queue
//===----------------------------------------------------------------------===//

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> Q(8);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Q.tryPush(I));
  EXPECT_FALSE(Q.tryPush(99)) << "queue should be full";
  for (int I = 0; I < 8; ++I) {
    int V = -1;
    EXPECT_TRUE(Q.tryPop(V));
    EXPECT_EQ(V, I);
  }
  int V;
  EXPECT_FALSE(Q.tryPop(V)) << "queue should be empty";
}

TEST(SpscQueueTest, WrapAround) {
  SpscQueue<int> Q(4);
  for (int Round = 0; Round < 100; ++Round) {
    EXPECT_TRUE(Q.tryPush(Round));
    EXPECT_TRUE(Q.tryPush(Round + 1000));
    int A, B;
    EXPECT_TRUE(Q.tryPop(A));
    EXPECT_TRUE(Q.tryPop(B));
    EXPECT_EQ(A, Round);
    EXPECT_EQ(B, Round + 1000);
  }
}

TEST(SpscQueueTest, CrossThreadStress) {
  // Property: all pushed values arrive exactly once, in order, across a
  // real producer/consumer thread pair.
  constexpr int N = 200000;
  SpscQueue<int> Q(256);
  long long Sum = 0;
  bool Ordered = true;
  std::thread Consumer([&] {
    int Last = -1;
    for (int I = 0; I < N; ++I) {
      int V = Q.pop();
      Ordered &= (V == Last + 1);
      Last = V;
      Sum += V;
    }
  });
  for (int I = 0; I < N; ++I)
    Q.push(I);
  Consumer.join();
  EXPECT_TRUE(Ordered);
  EXPECT_EQ(Sum, static_cast<long long>(N) * (N - 1) / 2);
}

//===----------------------------------------------------------------------===//
// Locks
//===----------------------------------------------------------------------===//

TEST(LockTest, SpinLockMutualExclusion) {
  SpinLock Lock;
  long long Counter = 0;
  std::vector<std::function<void()>> Tasks;
  for (int T = 0; T < 4; ++T)
    Tasks.push_back([&] {
      for (int I = 0; I < 20000; ++I) {
        Lock.lock();
        ++Counter;
        Lock.unlock();
      }
    });
  runParallel(Tasks);
  EXPECT_EQ(Counter, 4 * 20000);
}

TEST(LockTest, RankedAcquisitionNoDeadlock) {
  // Two threads repeatedly acquiring overlapping rank sets in ascending
  // order must not deadlock.
  CommSetLockManager Locks(3, LockMode::Mutex);
  std::vector<std::function<void()>> Tasks;
  long long Counter = 0;
  std::vector<unsigned> RanksA = {0, 1};
  std::vector<unsigned> RanksB = {0, 1, 2};
  for (int T = 0; T < 2; ++T)
    Tasks.push_back([&, T] {
      const auto &Ranks = T == 0 ? RanksA : RanksB;
      for (int I = 0; I < 10000; ++I) {
        Locks.acquire(Ranks);
        ++Counter;
        Locks.release(Ranks);
      }
    });
  runParallel(Tasks);
  EXPECT_EQ(Counter, 20000);
}

TEST(LockTest, NoneModeIsNoOp) {
  CommSetLockManager Locks(2, LockMode::None);
  std::vector<unsigned> Ranks = {0, 1};
  Locks.acquire(Ranks);
  Locks.release(Ranks); // Must not block or crash.
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// STM
//===----------------------------------------------------------------------===//

TEST(StmTest, ReadYourOwnWrite) {
  StmSpace Space;
  uint64_t X = 5;
  Stm Tx(Space);
  Tx.begin();
  EXPECT_EQ(Tx.read(&X), 5u);
  Tx.write(&X, 7);
  EXPECT_EQ(Tx.read(&X), 7u);
  EXPECT_TRUE(Tx.commit());
  EXPECT_EQ(X, 7u);
}

TEST(StmTest, ReadOnlyCommits) {
  StmSpace Space;
  uint64_t X = 42;
  Stm Tx(Space);
  Tx.begin();
  EXPECT_EQ(Tx.read(&X), 42u);
  EXPECT_TRUE(Tx.commit());
}

TEST(StmTest, ConflictingIncrementsSerializable) {
  // Classic counter test: concurrent transactional increments must not
  // lose updates (serializability property).
  StmSpace Space;
  uint64_t Counter = 0;
  constexpr int PerThread = 5000;
  std::vector<std::function<void()>> Tasks;
  for (int T = 0; T < 4; ++T)
    Tasks.push_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        Stm Tx(Space);
        do {
          Tx.begin();
          uint64_t V = Tx.read(&Counter);
          Tx.write(&Counter, V + 1);
        } while (!Tx.commit());
      }
    });
  runParallel(Tasks);
  EXPECT_EQ(Counter, 4u * PerThread);
}

TEST(StmTest, DisjointWritesBothCommitFirstTry) {
  StmSpace Space;
  // Place words far apart so they hash to different stripes.
  std::vector<uint64_t> Data(4096, 0);
  Stm Tx1(Space), Tx2(Space);
  Tx1.begin();
  Tx2.begin();
  Tx1.write(&Data[0], 1);
  Tx2.write(&Data[1000], 2);
  EXPECT_TRUE(Tx1.commit());
  EXPECT_TRUE(Tx2.commit());
  EXPECT_EQ(Data[0], 1u);
  EXPECT_EQ(Data[1000], 2u);
}

TEST(StmTest, StaleReadAborts) {
  StmSpace Space;
  uint64_t X = 0;
  Stm Tx1(Space);
  Tx1.begin();
  (void)Tx1.read(&X);

  // A second transaction commits a new value, bumping the clock.
  {
    Stm Tx2(Space);
    Tx2.begin();
    Tx2.write(&X, 9);
    ASSERT_TRUE(Tx2.commit());
  }

  // Tx1 now writes based on its stale read; commit must fail.
  Tx1.write(&X, 1);
  EXPECT_FALSE(Tx1.commit());
  EXPECT_EQ(X, 9u);
}

TEST(StmTest, TransferInvariantUnderContention) {
  // Property test: concurrent transfers between two accounts preserve the
  // total (snapshot isolation would break this; TL2 is serializable).
  StmSpace Space;
  std::vector<uint64_t> Accounts(512, 0);
  uint64_t *A = &Accounts[0];
  uint64_t *B = &Accounts[300];
  *A = 10000;
  *B = 10000;
  std::vector<std::function<void()>> Tasks;
  for (int T = 0; T < 4; ++T)
    Tasks.push_back([&, T] {
      for (int I = 0; I < 2000; ++I) {
        Stm Tx(Space);
        do {
          Tx.begin();
          uint64_t Va = Tx.read(A);
          uint64_t Vb = Tx.read(B);
          if (Tx.aborted())
            continue;
          uint64_t Delta = (T + I) % 7;
          if (Va >= Delta) {
            Tx.write(A, Va - Delta);
            Tx.write(B, Vb + Delta);
          }
        } while (!Tx.commit());
      }
    });
  runParallel(Tasks);
  EXPECT_EQ(*A + *B, 20000u);
}

TEST(StmTest, ForcedConflictAbortsThenRetries) {
  // Deterministic conflict: the victim reads X, an interfering transaction
  // commits a new version of X, and the victim's commit-time validation
  // must fail exactly once before the retry succeeds.
  StmSpace Space;
  uint64_t X = 0;
  Stm Victim(Space);
  bool Interfered = false;
  do {
    Victim.begin();
    uint64_t V = Victim.read(&X);
    if (!Interfered) {
      Interfered = true;
      Stm Interferer(Space);
      do {
        Interferer.begin();
        uint64_t W = Interferer.read(&X);
        if (Interferer.aborted())
          continue;
        Interferer.write(&X, W + 100);
      } while (!Interferer.commit());
    }
    if (Victim.aborted())
      continue;
    Victim.write(&X, V + 1);
  } while (!Victim.commit());
  EXPECT_GE(Victim.attempts(), 2u) << "first attempt must have aborted";
  EXPECT_EQ(X, 101u) << "retry must observe the interferer's update";
}

//===----------------------------------------------------------------------===//
// Ranked locks under inverted acquisition requests
//===----------------------------------------------------------------------===//

TEST(LockTest, InvertedAcquisitionOrderIsSortedByDiscipline) {
  // Two threads whose members *want* overlapping locks in opposite orders
  // ({0,1} vs {1,0}). Acquiring in request order could deadlock; the sync
  // engine's discipline — sort to ascending rank before acquire — must
  // make both make progress. This mirrors attachSynchronization, which
  // materializes LockRanks from a std::set (always ascending).
  CommSetLockManager Locks(3, LockMode::Mutex);
  uint64_t Shared01 = 0; // Guarded by ranks {0,1}.
  constexpr int Iters = 4000;
  auto worker = [&](std::vector<unsigned> Wanted) {
    std::sort(Wanted.begin(), Wanted.end()); // The engine's discipline.
    for (int I = 0; I < Iters; ++I) {
      Locks.acquire(Wanted);
      ++Shared01;
      Locks.release(Wanted);
    }
  };
  std::thread A(worker, std::vector<unsigned>{0, 1});
  std::thread B(worker, std::vector<unsigned>{1, 0});
  A.join();
  B.join();
  EXPECT_EQ(Shared01, static_cast<uint64_t>(2 * Iters));
}

TEST(LockTest, PartiallyOverlappingRankSetsNoDeadlock) {
  // Three threads over rank sets {0,1}, {1,2}, {0,2}: pairwise overlap in
  // a triangle, the classic deadlock shape when acquisition order is
  // uncoordinated. Ascending-rank acquisition is what breaks the cycle.
  CommSetLockManager Locks(3, LockMode::Spin);
  uint64_t PerRank[3] = {0, 0, 0};
  constexpr int Iters = 2000;
  auto worker = [&](unsigned RankA, unsigned RankB) {
    std::vector<unsigned> Ranks = {std::min(RankA, RankB),
                                   std::max(RankA, RankB)};
    for (int I = 0; I < Iters; ++I) {
      Locks.acquire(Ranks);
      ++PerRank[RankA];
      ++PerRank[RankB];
      Locks.release(Ranks);
    }
  };
  std::thread A(worker, 0u, 1u);
  std::thread B(worker, 1u, 2u);
  std::thread C(worker, 0u, 2u);
  A.join();
  B.join();
  C.join();
  EXPECT_EQ(PerRank[0], static_cast<uint64_t>(2 * Iters));
  EXPECT_EQ(PerRank[1], static_cast<uint64_t>(2 * Iters));
  EXPECT_EQ(PerRank[2], static_cast<uint64_t>(2 * Iters));
}

//===----------------------------------------------------------------------===//
// SPSC backpressure at the default 1024-entry bound
//===----------------------------------------------------------------------===//

TEST(SpscQueueTest, BackpressureAtDefaultBound) {
  SpscQueue<int> Q; // Default capacity: 1024 entries.
  ASSERT_EQ(Q.capacity(), 1024u);
  for (int I = 0; I < 1024; ++I)
    ASSERT_TRUE(Q.tryPush(I)) << "slot " << I << " must accept";
  EXPECT_EQ(Q.size(), 1024u);
  EXPECT_FALSE(Q.tryPush(1024)) << "1025th push must be refused";

  // A blocking push cannot complete until the consumer frees a slot.
  std::atomic<bool> Pushed{false};
  std::thread Producer([&] {
    Q.push(1024);
    Pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(Pushed.load(std::memory_order_acquire))
      << "producer must be held in backpressure while the queue is full";

  int V = -1;
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 0);
  Producer.join();
  EXPECT_TRUE(Pushed.load());

  // FIFO order survives the wrap: 1..1024 drain in sequence.
  for (int I = 1; I <= 1024; ++I) {
    ASSERT_TRUE(Q.tryPop(V));
    ASSERT_EQ(V, I);
  }
  EXPECT_TRUE(Q.empty());
}

//===----------------------------------------------------------------------===//
// Resilience substrate: poisoning, retry bounds, supervised join
//===----------------------------------------------------------------------===//

TEST(SpscQueueTest, PoisonIsIdempotentAndSticky) {
  SpscQueue<int> Q(4);
  EXPECT_FALSE(Q.poisoned());
  Q.poison();
  Q.poison(); // Safe to repeat from any thread.
  EXPECT_TRUE(Q.poisoned());
  EXPECT_FALSE(Q.pushWait(1));
  int V = 0;
  EXPECT_FALSE(Q.popWait(V));
}

TEST(StmTest, RetryGovernorBacksOffThenExhausts) {
  StmRetryGovernor Gov(/*MaxAttempts=*/3, /*BackoffBaseUs=*/1,
                       /*BackoffCapUs=*/2, /*JitterSeed=*/99);
  EXPECT_EQ(Gov.failures(), 0u);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Retry);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Retry);
  EXPECT_EQ(Gov.onFailedAttempt(), StmOutcome::Exhausted);
  EXPECT_EQ(Gov.failures(), 3u);
}

TEST(LockTest, SpinTryLockForTimesOutWhenHeld) {
  SpinLock Lock;
  Lock.lock();
  EXPECT_FALSE(Lock.try_lock_for_ms(30));
  Lock.unlock();
  EXPECT_TRUE(Lock.try_lock_for_ms(30));
  Lock.unlock();
}

TEST(ThreadPoolTest, SupervisedCleanRunReportsNothing) {
  RegionControl Control;
  std::atomic<int> Ran{0};
  std::vector<std::function<void()>> Tasks;
  for (int T = 0; T < 4; ++T)
    Tasks.push_back([&Control, &Ran, T] {
      for (int I = 0; I < 100; ++I)
        Control.heartbeat(static_cast<unsigned>(T));
      ++Ran;
    });
  SupervisedReport Rep = runParallelSupervised(
      Tasks, Control, /*WatchdogStallMs=*/10000, /*JoinGraceMs=*/5000, {});
  EXPECT_EQ(Ran.load(), 4);
  EXPECT_FALSE(Rep.Faulted);
  EXPECT_FALSE(Rep.WatchdogTripped);
  EXPECT_TRUE(Rep.AllJoined);
  EXPECT_EQ(Rep.Kind, FaultKind::None);
  EXPECT_GE(Control.beats(), 400u);
}

TEST(ThreadPoolTest, WorkersAreReusedAcrossConsecutiveRegions) {
  // The pool's whole point: region 2 of N workers must not spawn N more
  // threads. spawnCount() counts OS-thread creations over the pool's life.
  WorkerPool Pool;
  constexpr unsigned N = 4;
  std::atomic<unsigned> Ran{0};
  std::vector<std::function<void()>> Tasks;
  for (unsigned I = 0; I < N; ++I)
    Tasks.push_back([&Ran] { Ran.fetch_add(1, std::memory_order_relaxed); });
  Pool.run(Tasks);
  EXPECT_EQ(Pool.spawnCount(), N);
  Pool.run(Tasks);
  Pool.run(Tasks);
  EXPECT_EQ(Ran.load(), 3 * N);
  EXPECT_EQ(Pool.spawnCount(), N) << "parked workers must be reused";
}

//===----------------------------------------------------------------------===//
// Work-stealing deque
//===----------------------------------------------------------------------===//

TEST(StealDequeTest, OwnerPopsNewestThiefStealsOldest) {
  StealDeque D;
  uint64_t V = 0;
  EXPECT_FALSE(D.pop(V));
  EXPECT_FALSE(D.steal(V));
  EXPECT_TRUE(D.push(1));
  EXPECT_TRUE(D.push(2));
  EXPECT_TRUE(D.push(3));
  EXPECT_FALSE(D.emptyApprox());
  EXPECT_TRUE(D.steal(V));
  EXPECT_EQ(V, 1u) << "thief takes the oldest (largest) range";
  EXPECT_TRUE(D.pop(V));
  EXPECT_EQ(V, 3u) << "owner takes the newest (LIFO locality)";
  EXPECT_TRUE(D.pop(V));
  EXPECT_EQ(V, 2u);
  EXPECT_FALSE(D.pop(V));
  EXPECT_FALSE(D.steal(V));
  EXPECT_TRUE(D.emptyApprox());
}

TEST(StealDequeTest, PushReportsOverflowAtCapacity) {
  StealDeque D;
  for (unsigned I = 0; I < StealDeque::Capacity; ++I)
    ASSERT_TRUE(D.push(I));
  EXPECT_FALSE(D.push(999)) << "full deque must refuse, not overwrite";
  uint64_t V = 0;
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(D.push(999)) << "space freed by a steal is reusable";
}

TEST(StealDequeTest, ConcurrentOwnerAndThievesLoseNothing) {
  // Owner pushes Rounds batches and drains its own bottom while two
  // thieves hammer the top: every pushed value must be taken exactly once
  // (sum check), by whichever side. TSan-clean by construction (seq_cst
  // atomics only; see StealDeque.h).
  StealDeque D;
  constexpr uint64_t Rounds = 20000;
  std::atomic<uint64_t> StolenSum{0};
  std::atomic<bool> Done{false};
  std::vector<std::thread> Thieves;
  for (int T = 0; T < 2; ++T)
    Thieves.emplace_back([&D, &StolenSum, &Done] {
      uint64_t V = 0;
      while (!Done.load(std::memory_order_acquire))
        if (D.steal(V))
          StolenSum.fetch_add(V, std::memory_order_relaxed);
    });
  uint64_t PushedSum = 0, OwnerSum = 0;
  for (uint64_t I = 1; I <= Rounds; ++I) {
    // Values start at 1: the sum identity must count every entry.
    while (!D.push(I))
      ; // Full only transiently while thieves drain.
    PushedSum += I;
    if (I % 4 == 0) { // Periodically drain own bottom like the executor.
      uint64_t V = 0;
      while (D.pop(V))
        OwnerSum += V;
    }
  }
  uint64_t V = 0;
  while (D.pop(V))
    OwnerSum += V;
  Done.store(true, std::memory_order_release);
  for (std::thread &Th : Thieves)
    Th.join();
  EXPECT_TRUE(D.emptyApprox());
  EXPECT_EQ(OwnerSum + StolenSum.load(), PushedSum)
      << "every entry taken exactly once, by owner or thief";
}

} // namespace
