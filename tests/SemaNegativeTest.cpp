//===- SemaNegativeTest.cpp - Rejected-construct diagnostics --------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// One test per construct the frontend must reject, asserting both the
// diagnostic text and where it points. These pin down the paper's §3.1
// static rules (structured control flow, pure predicates, no transitive
// member calls, acyclic COMMSET graph, return-free named-block exporters)
// against silent regressions.
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"

#include <gtest/gtest.h>

using namespace commset;

namespace {

/// 1-based line of the first source line containing \p Needle (0 if absent).
uint32_t lineOf(const std::string &Source, const std::string &Needle) {
  uint32_t Line = 1;
  size_t Pos = 0;
  size_t Hit = Source.find(Needle);
  if (Hit == std::string::npos)
    return 0;
  while ((Pos = Source.find('\n', Pos)) != std::string::npos && Pos < Hit) {
    ++Line;
    ++Pos;
  }
  return Line;
}

/// Compiles expecting failure; returns the first diagnostic whose message
/// contains \p Needle (null if the error did not fire).
const Diagnostic *expectRejected(const std::string &Source,
                                 const std::string &Needle,
                                 DiagnosticEngine &Diags) {
  auto C = Compilation::fromSource(Source, Diags);
  EXPECT_EQ(C, nullptr) << "expected rejection: " << Needle;
  EXPECT_TRUE(Diags.contains(Needle)) << Diags.str();
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find(Needle) != std::string::npos)
      return &D;
  return nullptr;
}

TEST(SemaNegativeTest, TransitiveMemberCallIsIllDefined) {
  std::string Source = R"(
int x = 0;
#pragma commset decl(S, self)
#pragma commset member(S)
void inner(int v) { x = x + v; }
#pragma commset member(S)
void outer(int v) { inner(v); }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    outer(i);
  }
  return x;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "COMMSET 'S' is ill-defined: member 'outer' transitively calls "
      "member 'inner'",
      Diags);
  ASSERT_NE(D, nullptr);
  // Well-formedness is a whole-program property of the lowered module; it
  // carries no single source location.
  EXPECT_FALSE(D->Loc.isValid());
}

TEST(SemaNegativeTest, CyclicCommSetGraphIsRejected) {
  // SA -> SB via fa calling gb, SB -> SA via kb calling ha; no member
  // transitively calls a member of its *own* set, so the cycle check is
  // what must fire.
  std::string Source = R"(
int x = 0;
#pragma commset decl(SA, self)
#pragma commset decl(SB, self)
#pragma commset member(SB)
void gb(int v) { x = x + v; }
#pragma commset member(SA)
void fa(int v) { gb(v); }
#pragma commset member(SA)
void ha(int v) { x = x + v + v; }
#pragma commset member(SB)
void kb(int v) { ha(v); }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    fa(i);
    kb(i);
  }
  return x;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D =
      expectRejected(Source, "COMMSET graph has a cycle through", Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_NE(D->Message.find("not well-formed"), std::string::npos);
  EXPECT_FALSE(D->Loc.isValid());
}

TEST(SemaNegativeTest, PredicateCallingFunctionIsImpure) {
  std::string Source = R"(
extern int probe(int x);
#pragma commset effects(probe, pure)
extern void touch(int k);
#pragma commset effects(touch, reads(t), writes(t))
#pragma commset decl(K)
#pragma commset predicate(K, (int a), (int b), probe(a) != b)
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    #pragma commset member(K(i))
    {
      touch(i);
    }
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source, "COMMSETPREDICATE must be pure: calls are not allowed",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "#pragma commset predicate"));
}

TEST(SemaNegativeTest, PredicateReadingGlobalIsImpure) {
  std::string Source = R"(
int gflag = 1;
extern void touch(int k);
#pragma commset effects(touch, reads(t), writes(t))
#pragma commset decl(K)
#pragma commset predicate(K, (int a), (int b), a != b + gflag)
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    #pragma commset member(K(i))
    {
      touch(i);
    }
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source, "COMMSETPREDICATE must be pure: cannot read global 'gflag'",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "#pragma commset predicate"));
}

TEST(SemaNegativeTest, ReturnInsideCommutativeBlock) {
  std::string Source = R"(
extern void touch(int k);
#pragma commset effects(touch, reads(t), writes(t))
int f(int i) {
  #pragma commset member(SELF)
  {
    touch(i);
    return 3;
  }
  return 0;
}
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    f(i);
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "return cannot appear inside a commutative block (non-local control "
      "flow; paper section 3.1)",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "return 3;"));
}

TEST(SemaNegativeTest, BreakEscapingCommutativeBlock) {
  std::string Source = R"(
extern void touch(int k);
#pragma commset effects(touch, reads(t), writes(t))
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    #pragma commset member(SELF)
    {
      touch(i);
      break;
    }
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "break/continue cannot escape a commutative block; its parent loop "
      "must be inside the block (paper section 3.1)",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "break;"));
}

TEST(SemaNegativeTest, NamedBlockExporterWithReturnCannotBeEnabled) {
  std::string Source = R"(
extern void touch(int k);
#pragma commset effects(touch, reads(t), writes(t))
#pragma commset decl(K)
#pragma commset predicate(K, (int a), (int b), a != b)
#pragma commset namedarg(RB)
int step(int k) {
  #pragma commset namedblock(RB)
  {
    touch(k);
  }
  return k;
}
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    #pragma commset enable(RB: K(i))
    step(i);
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "cannot enable named blocks of 'step': functions exporting named "
      "blocks must not contain return statements",
      Diags);
  ASSERT_NE(D, nullptr);
  // The error points at the enable site, the only place the user can fix.
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "step(i);"));
}

// A predicate call to a callee with *declared side effects* gets the
// CL010-coded diagnostic (the generic purity message stays for declared-pure
// callees, which are still rejected by the paper's inspection rule).
TEST(SemaNegativeTest, PredicateCallingSideEffectingFunctionIsCL010) {
  std::string Source = R"(
extern int bump(int x);
#pragma commset effects(bump, reads(b), writes(b))
extern void touch(int k);
#pragma commset effects(touch, reads(t), writes(t))
#pragma commset decl(K)
#pragma commset predicate(K, (int a), (int b), bump(a) != b)
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    #pragma commset member(K(i))
    {
      touch(i);
    }
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "COMMSETPREDICATE must be pure: call to 'bump' has side effects "
      "[CL010]",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "#pragma commset predicate"));
}

// NOSYNC promises the members are internally thread safe; a sync(...)
// request for the same set claims the opposite. The contradiction is CL012.
TEST(SemaNegativeTest, NosyncWithSyncRequestIsContradictory) {
  std::string Source = R"(
extern void stat_note(int v);
#pragma commset effects(stat_note, reads(s), writes(s))
#pragma commset decl(LOG, self)
#pragma commset nosync(LOG)
#pragma commset sync(LOG, tm)
#pragma commset member(LOG)
void note(int v) { stat_note(v); }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    note(i);
  }
  return 0;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "COMMSET 'LOG' is declared NOSYNC but requests 'tm' synchronization",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_NE(D->Message.find("[CL012]"), std::string::npos);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "#pragma commset sync"));
}

// Listing one set twice in a member clause is CL013: the duplicate either
// double-acquires the set lock or silently means nothing, so reject it.
TEST(SemaNegativeTest, DuplicateMembershipIsCL013) {
  std::string Source = R"(
int acc = 0;
#pragma commset decl(S, self)
#pragma commset member(S, S)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(i);
  }
  return acc;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source, "duplicate membership of 'add' in COMMSET 'S'", Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_NE(D->Message.find("[CL013]"), std::string::npos);
}

// Two group sets with identical member lists make every member acquire two
// locks where one set would do. This is legal, so it warns (CL014) and the
// program still compiles.
TEST(SemaNegativeTest, IdenticalGroupSetsWarnCL014) {
  std::string Source = R"(
int acc = 0;
#pragma commset decl(G1)
#pragma commset decl(G2)
#pragma commset member(SELF, G1, G2)
void add(int v) { acc = acc + v; }
#pragma commset member(SELF, G1, G2)
void sub(int v) { acc = acc - v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(i);
    sub(i);
  }
  return acc;
}
)";
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Source, Diags);
  ASSERT_NE(C, nullptr) << Diags.str();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(Diags.contains(
      "group COMMSETs 'G1' and 'G2' have identical member lists"))
      << Diags.str();
  EXPECT_TRUE(Diags.contains("[CL014]")) << Diags.str();
}

// sync(S, priv) is a demand, not a hint: a member whose global write is an
// overwrite cannot be replicated-and-merged, so the frontend rejects the
// program with CL050 pointing at the offending member.
TEST(SemaNegativeTest, ForcedPrivWithoutReductionProofIsCL050) {
  std::string Source = R"(
int last = 0;
#pragma commset decl(S, self)
#pragma commset sync(S, priv)
#pragma commset member(S)
void put(int v) { last = v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    put(i);
  }
  return last;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source,
      "COMMSET 'S' requests 'priv' synchronization but member 'put' is not "
      "a provable add-reduction",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_NE(D->Message.find("[CL050]"), std::string::npos);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "void put"));
}

// The sync-mode vocabulary now includes priv; the rejection for a bogus
// mode must advertise it.
TEST(SemaNegativeTest, UnknownSyncModeListsPriv) {
  std::string Source = R"(
int acc = 0;
#pragma commset decl(S, self)
#pragma commset sync(S, turbo)
#pragma commset member(S)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(i);
  }
  return acc;
}
)";
  DiagnosticEngine Diags;
  const Diagnostic *D = expectRejected(
      Source, "unknown sync mode 'turbo' (expected mutex, spin, tm, or priv)",
      Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Loc.Line, lineOf(Source, "#pragma commset sync"));
}

} // namespace
