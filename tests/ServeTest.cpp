//===- ServeTest.cpp - commsetd protocol, cache, admission, e2e -----------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// TESTING.md tier 2g: the serving subsystem. Protocol framing (including
// hostile input), the admission controller, the per-plan circuit breaker,
// the compiled-plan cache (LRU eviction, single-flight dedup, cache-key
// sensitivity), the bench JSON schema stamp, and end-to-end server
// behavior over real sockets: valid jobs, malformed frames, explicit
// overload shedding, deadlines, breaker quarantine, and clean shutdown.
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/Server.h"
#include "commset/Workloads/BenchHarness.h"

#include <gtest/gtest.h>

#include <thread>

using namespace commset;
using namespace commset::serve;

namespace {

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, FrameRoundTripInArbitraryChunks) {
  std::string Wire = formatFrame("RUN", "workload:md5sum\nthreads:4\n") +
                     formatFrame("PING", "");
  for (size_t Chunk : {size_t(1), size_t(3), size_t(7), Wire.size()}) {
    FrameReader Reader;
    std::vector<serve::Frame> Got;
    size_t Off = 0;
    while (Off < Wire.size()) {
      size_t N = std::min(Chunk, Wire.size() - Off);
      Reader.feed(Wire.data() + Off, N);
      Off += N;
      serve::Frame F;
      while (Reader.next(F) == FrameReader::Status::Ready)
        Got.push_back(F);
    }
    ASSERT_EQ(Got.size(), 2u) << "chunk=" << Chunk;
    EXPECT_EQ(Got[0].Kind, "RUN");
    EXPECT_EQ(Got[0].Body, "workload:md5sum\nthreads:4\n");
    EXPECT_EQ(Got[1].Kind, "PING");
    EXPECT_TRUE(Got[1].Body.empty());
  }
}

TEST(ServeProtocolTest, HeaderRejectsHostileInput) {
  std::string Kind;
  size_t Len = 0;
  EXPECT_FALSE(parseFrameHeader("XSD1 RUN 5", Kind, Len));
  EXPECT_FALSE(parseFrameHeader("CSD1 run 5", Kind, Len));
  EXPECT_FALSE(parseFrameHeader("CSD1 RUN", Kind, Len));
  EXPECT_FALSE(parseFrameHeader("CSD1 RUN -1", Kind, Len));
  EXPECT_FALSE(parseFrameHeader("CSD1 RUN 999999999", Kind, Len));
  EXPECT_FALSE(parseFrameHeader(
      "CSD1 RUN " + std::to_string(MaxBodyBytes + 1), Kind, Len));
  EXPECT_TRUE(parseFrameHeader("CSD1 STATS 0", Kind, Len));
  EXPECT_EQ(Kind, "STATS");
  EXPECT_EQ(Len, 0u);
}

TEST(ServeProtocolTest, ReaderPoisonsPermanently) {
  FrameReader Reader;
  std::string Garbage = "GARBAGE WITHOUT MEANING\n";
  Reader.feed(Garbage.data(), Garbage.size());
  serve::Frame F;
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Error);
  // A valid frame after the poison must not resurrect the stream.
  std::string Valid = formatFrame("PING", "");
  Reader.feed(Valid.data(), Valid.size());
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Error);
}

TEST(ServeProtocolTest, ReaderBoundsHeaderBuffering) {
  FrameReader Reader;
  std::string NoNewline(MaxHeaderBytes + 10, 'A');
  Reader.feed(NoNewline.data(), NoNewline.size());
  serve::Frame F;
  EXPECT_EQ(Reader.next(F), FrameReader::Status::Error);
}

TEST(ServeProtocolTest, RunRequestRoundTrip) {
  RunRequest R;
  R.WorkloadName = "kmeans";
  R.Scheme = "doall";
  R.Sync = SyncMode::Priv;
  R.Sched = SchedPolicy::Dynamic;
  R.Threads = 8;
  R.Scale = 128;
  R.DeadlineMs = 750;
  RunRequest Parsed;
  std::string Err;
  ASSERT_TRUE(parseRunRequest(formatRunRequest(R), Parsed, &Err)) << Err;
  EXPECT_EQ(Parsed.WorkloadName, "kmeans");
  EXPECT_EQ(Parsed.Scheme, "doall");
  EXPECT_EQ(Parsed.Sync, SyncMode::Priv);
  EXPECT_EQ(Parsed.Sched, SchedPolicy::Dynamic);
  EXPECT_EQ(Parsed.Threads, 8u);
  EXPECT_EQ(Parsed.Scale, 128);
  EXPECT_EQ(Parsed.DeadlineMs, 750u);
  EXPECT_EQ(Parsed.cacheKey(), R.cacheKey());
}

TEST(ServeProtocolTest, RunRequestValidation) {
  RunRequest R;
  // Exactly one of workload:/source:.
  EXPECT_FALSE(parseRunRequest("threads:4\n", R, nullptr));
  EXPECT_FALSE(parseRunRequest(
      "workload:md5sum\nsource:\nvoid run(int n) {}\n", R, nullptr));
  EXPECT_FALSE(parseRunRequest("workload:md5sum\nthreads:0\n", R, nullptr));
  EXPECT_FALSE(parseRunRequest("workload:md5sum\nthreads:65\n", R, nullptr));
  EXPECT_FALSE(parseRunRequest("workload:md5sum\nbogus:1\n", R, nullptr));
  EXPECT_FALSE(parseRunRequest("workload:md5sum\nsched:banana\n", R,
                               nullptr));
  EXPECT_FALSE(parseRunRequest("workload:md5sum\nno separator here", R,
                               nullptr));
  EXPECT_TRUE(parseRunRequest("workload:md5sum\n", R, nullptr));
}

TEST(ServeProtocolTest, CacheKeyIsSensitiveToPlanOptions) {
  RunRequest Base;
  Base.WorkloadName = "md5sum";
  RunRequest B = Base;
  B.Scheme = "doall";
  EXPECT_NE(Base.cacheKey(), B.cacheKey());
  B = Base;
  B.Sync = SyncMode::Tm;
  EXPECT_NE(Base.cacheKey(), B.cacheKey());
  B = Base;
  B.Sched = SchedPolicy::Static;
  EXPECT_NE(Base.cacheKey(), B.cacheKey());
  B = Base;
  B.Threads = 8;
  EXPECT_NE(Base.cacheKey(), B.cacheKey());
  // Scale and deadline are execution inputs, not plan inputs: same key.
  B = Base;
  B.Scale = 999;
  B.DeadlineMs = 5;
  EXPECT_EQ(Base.cacheKey(), B.cacheKey());
  // Inline source keys differ from workload keys and from other sources.
  RunRequest S1;
  S1.Source = "void run(int n) {}";
  RunRequest S2;
  S2.Source = "void run(int m) {}";
  EXPECT_NE(S1.cacheKey(), Base.cacheKey());
  EXPECT_NE(S1.cacheKey(), S2.cacheKey());
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

TEST(ServeAdmissionTest, QueueDepthGateSheds) {
  AdmissionConfig C;
  C.MaxQueueDepth = 4;
  AdmissionController A(C);
  EXPECT_TRUE(A.admit(0));
  EXPECT_TRUE(A.admit(3));
  EXPECT_FALSE(A.admit(4));
  EXPECT_FALSE(A.admit(100));
  EXPECT_EQ(A.admitted(), 2u);
  EXPECT_EQ(A.shed(), 2u);
  EXPECT_EQ(A.shedQueueFull(), 2u);
}

TEST(ServeAdmissionTest, TokenBucketShedsBeyondBurst) {
  AdmissionConfig C;
  C.RatePerSec = 0.001; // Refill is negligible within the test.
  C.Burst = 3;
  AdmissionController A(C);
  EXPECT_TRUE(A.admit(0));
  EXPECT_TRUE(A.admit(0));
  EXPECT_TRUE(A.admit(0));
  EXPECT_FALSE(A.admit(0));
  EXPECT_FALSE(A.admit(0));
  EXPECT_EQ(A.admitted(), 3u);
  EXPECT_EQ(A.shed(), 2u);
  EXPECT_EQ(A.shedQueueFull(), 0u);
}

TEST(ServeAdmissionTest, ZeroRateMeansUnlimited) {
  AdmissionController A(AdmissionConfig{});
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(A.admit(0));
  EXPECT_EQ(A.shed(), 0u);
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

TEST(ServeBreakerTest, TripsProbesAndRecovers) {
  CircuitBreaker B(/*FailThreshold=*/3, /*ProbeAfterSkips=*/4);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  // Two faults + a success: consecutive counter resets, still closed.
  B.onParallelFault();
  B.onParallelFault();
  B.onParallelSuccess();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  // Three consecutive faults trip it open.
  B.onParallelFault();
  B.onParallelFault();
  B.onParallelFault();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(B.trips(), 1u);
  // Open: skips until the probe slot comes around.
  EXPECT_FALSE(B.allowParallel());
  EXPECT_FALSE(B.allowParallel());
  EXPECT_FALSE(B.allowParallel());
  EXPECT_TRUE(B.allowParallel()); // The probe.
  EXPECT_EQ(B.state(), CircuitBreaker::State::HalfOpen);
  // Failed probe: straight back to open.
  B.onParallelFault();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  EXPECT_EQ(B.trips(), 2u);
  // Next probe succeeds: closed again, parallel flows freely.
  EXPECT_FALSE(B.allowParallel());
  EXPECT_FALSE(B.allowParallel());
  EXPECT_FALSE(B.allowParallel());
  EXPECT_TRUE(B.allowParallel());
  B.onParallelSuccess();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(B.allowParallel());
  EXPECT_GE(B.skips(), 6u);
}

//===----------------------------------------------------------------------===//
// Plan cache
//===----------------------------------------------------------------------===//

RunRequest workloadRequest(const std::string &Name, unsigned Threads = 4) {
  RunRequest R;
  R.WorkloadName = Name;
  R.Threads = Threads;
  return R;
}

TEST(ServePlanCacheTest, HitsAndLruEviction) {
  PlanCache Cache(/*Capacity=*/2);
  // Three distinct keys through a capacity-2 cache: the coldest falls out.
  auto R1 = Cache.getOrCompile(workloadRequest("md5sum", 2));
  ASSERT_TRUE(R1.Job) << R1.Error;
  EXPECT_FALSE(R1.CacheHit);
  auto R2 = Cache.getOrCompile(workloadRequest("md5sum", 4));
  ASSERT_TRUE(R2.Job) << R2.Error;
  auto R1Again = Cache.getOrCompile(workloadRequest("md5sum", 2));
  ASSERT_TRUE(R1Again.Job);
  EXPECT_TRUE(R1Again.CacheHit);
  EXPECT_EQ(R1Again.Job.get(), R1.Job.get()); // Same compiled artifact.
  // Inserting a third evicts threads=4 (LRU; threads=2 was just touched).
  auto R3 = Cache.getOrCompile(workloadRequest("md5sum", 8));
  ASSERT_TRUE(R3.Job) << R3.Error;
  PlanCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Size, 2u);
  EXPECT_TRUE(Cache.getOrCompile(workloadRequest("md5sum", 2)).CacheHit);
  auto R2Again = Cache.getOrCompile(workloadRequest("md5sum", 4));
  ASSERT_TRUE(R2Again.Job);
  EXPECT_FALSE(R2Again.CacheHit); // Was evicted: recompiled.
}

TEST(ServePlanCacheTest, SingleFlightDedupsConcurrentIdenticalJobs) {
  PlanCache Cache(/*Capacity=*/8);
  constexpr unsigned N = 8;
  std::vector<std::thread> Threads;
  std::vector<std::shared_ptr<CompiledJob>> Jobs(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&Cache, &Jobs, I] {
      Jobs[I] = Cache.getOrCompile(workloadRequest("kmeans")).Job;
    });
  for (auto &T : Threads)
    T.join();
  for (unsigned I = 0; I < N; ++I) {
    ASSERT_TRUE(Jobs[I]);
    EXPECT_EQ(Jobs[I].get(), Jobs[0].get());
  }
  PlanCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u) << "identical concurrent jobs must compile once";
  EXPECT_EQ(S.Hits, N - 1);
}

TEST(ServePlanCacheTest, DistinctPlanOptionsCompileSeparately) {
  PlanCache Cache(/*Capacity=*/8);
  RunRequest A = workloadRequest("md5sum");
  RunRequest B = A;
  B.Sync = SyncMode::Spin;
  RunRequest C = A;
  C.Sched = SchedPolicy::Static;
  RunRequest D = A;
  D.Scheme = "doall";
  for (const RunRequest &R : {A, B, C, D}) {
    auto Res = Cache.getOrCompile(R);
    ASSERT_TRUE(Res.Job) << Res.Error;
    EXPECT_FALSE(Res.CacheHit);
  }
  EXPECT_EQ(Cache.stats().Misses, 4u);
}

TEST(ServePlanCacheTest, CompileFailureIsSurfacedAndNotCached) {
  PlanCache Cache(/*Capacity=*/4);
  FaultPolicy Policy;
  Policy.Seed = 1;
  Policy.CompileFailPerMille = 1000; // Every compile attempt fails.
  FaultInjector Faults(Policy);
  auto Bad = Cache.getOrCompile(workloadRequest("md5sum"), &Faults);
  EXPECT_FALSE(Bad.Job);
  EXPECT_NE(Bad.Error.find("injected"), std::string::npos);
  // The failure must not be cached: the same key compiles fine next time.
  auto Good = Cache.getOrCompile(workloadRequest("md5sum"));
  ASSERT_TRUE(Good.Job) << Good.Error;
  EXPECT_FALSE(Good.CacheHit);
  PlanCache::Stats S = Cache.stats();
  EXPECT_EQ(S.CompileFailures, 1u);
  EXPECT_EQ(S.Size, 1u);
  // Unknown workloads are a compile error too, also uncached.
  auto Unknown = Cache.getOrCompile(workloadRequest("blackscholes"));
  EXPECT_FALSE(Unknown.Job);
  EXPECT_NE(Unknown.Error.find("unknown workload"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bench JSON schema (satellite: provenance stamping)
//===----------------------------------------------------------------------===//

TEST(ServeBenchJsonTest, RecordsCarrySchemaVersionDescribeAndExtras) {
  bench::BenchRecord R;
  R.Workload = "serve-mix";
  R.Label = "serve-overload";
  R.Threads = 8;
  R.Applicable = true;
  R.Extra = {{"rps", 123.5}, {"p99_ms", 42.25}};
  std::string Json = bench::benchRecordsJson({R});
  EXPECT_NE(Json.find("\"schema_version\": " +
                      std::to_string(bench::BenchJsonSchemaVersion)),
            std::string::npos);
  EXPECT_NE(Json.find("\"git_describe\": \""), std::string::npos);
  EXPECT_NE(Json.find(std::string("\"") + bench::benchGitDescribe() +
                      "\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"rps\": 123.5"), std::string::npos);
  EXPECT_NE(Json.find("\"p99_ms\": 42.25"), std::string::npos);
  EXPECT_STRNE(bench::benchGitDescribe(), "");
}

//===----------------------------------------------------------------------===//
// End-to-end server
//===----------------------------------------------------------------------===//

class ServeServerTest : public ::testing::Test {
protected:
  std::unique_ptr<Server> startServer(ServerConfig Config) {
    auto S = std::make_unique<Server>(Config);
    std::string Err;
    if (!S->start(&Err)) {
      ADD_FAILURE() << "server start failed: " << Err;
      return nullptr;
    }
    return S;
  }

  std::string kvOf(const std::string &Body, const std::string &Key) {
    for (auto &[K, V] : parseKvBody(Body))
      if (K == Key)
        return V;
    return {};
  }
};

TEST_F(ServeServerTest, PingRunAndStats) {
  auto S = startServer(ServerConfig{});
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));

  RespStatus St;
  std::string Body;
  ASSERT_TRUE(Client.request(MsgType::Ping, "", St, Body));
  EXPECT_EQ(St, RespStatus::Ok);

  RunRequest Req;
  Req.WorkloadName = "md5sum";
  Req.Scale = 32;
  Req.DeadlineMs = 8000;
  ASSERT_TRUE(
      Client.request(MsgType::Run, formatRunRequest(Req), St, Body));
  EXPECT_EQ(St, RespStatus::Ok) << Body;
  EXPECT_FALSE(kvOf(Body, "checksum").empty());
  EXPECT_EQ(kvOf(Body, "cached"), "0");

  // Same job again: served from the plan cache.
  ASSERT_TRUE(
      Client.request(MsgType::Run, formatRunRequest(Req), St, Body));
  EXPECT_EQ(St, RespStatus::Ok) << Body;
  EXPECT_EQ(kvOf(Body, "cached"), "1");

  ASSERT_TRUE(Client.request(MsgType::Stats, "", St, Body));
  EXPECT_EQ(St, RespStatus::Ok);
  EXPECT_NE(Body.find("requests:"), std::string::npos);
  EXPECT_NE(Body.find("cache_hits:1"), std::string::npos);

  ServerStats Stats = S->stats();
  EXPECT_EQ(Stats.Replies[static_cast<unsigned>(RespStatus::Ok)], 4u);
  EXPECT_EQ(Stats.Cache.Hits, 1u);
  EXPECT_EQ(Stats.BadFrames, 0u);
  S->stop();
}

TEST_F(ServeServerTest, InlineSourceJobRuns) {
  auto S = startServer(ServerConfig{});
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  RunRequest Req;
  Req.Source = "extern int work(int x);\n"
               "#pragma commset member(SELF)\n"
               "extern void record(int i, int v);\n"
               "#pragma commset effects(work, pure)\n"
               "#pragma commset effects(record, reads(out), writes(out))\n"
               "void run(int n) {\n"
               "  for (int i = 0; i < n; i++) {\n"
               "    record(i, work(i));\n"
               "  }\n"
               "}\n";
  Req.Scheme = "doall";
  Req.Scale = 64;
  Req.DeadlineMs = 8000;
  RespStatus St;
  std::string Body;
  ASSERT_TRUE(
      Client.request(MsgType::Run, formatRunRequest(Req), St, Body));
  EXPECT_EQ(St, RespStatus::Ok) << Body;
  EXPECT_FALSE(kvOf(Body, "checksum").empty());
  EXPECT_EQ(kvOf(Body, "iterations"), "64");
  S->stop();
}

TEST_F(ServeServerTest, MalformedFrameIsConfinedToItsConnection) {
  auto S = startServer(ServerConfig{});
  ASSERT_TRUE(S);
  SyncClient Hostile;
  ASSERT_TRUE(Hostile.connect(S->port()));
  ASSERT_TRUE(Hostile.sendRaw("THIS IS NOT A FRAME\n"));
  RespStatus St;
  std::string Body;
  ASSERT_TRUE(Hostile.recvResponse(St, Body, nullptr, 5000));
  EXPECT_EQ(St, RespStatus::BadRequest);

  // The listener survived: a fresh connection works normally.
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  ASSERT_TRUE(Client.request(MsgType::Ping, "", St, Body));
  EXPECT_EQ(St, RespStatus::Ok);
  EXPECT_GE(S->stats().BadFrames, 1u);
  S->stop();
}

TEST_F(ServeServerTest, MalformedRunBodyKeepsConnectionUsable) {
  auto S = startServer(ServerConfig{});
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  RespStatus St;
  std::string Body;
  // Well-framed but semantically invalid: BAD_REQUEST, stream stays good.
  ASSERT_TRUE(Client.request(MsgType::Run, "bogus_key:1\n", St, Body));
  EXPECT_EQ(St, RespStatus::BadRequest);
  ASSERT_TRUE(Client.request(MsgType::Ping, "", St, Body));
  EXPECT_EQ(St, RespStatus::Ok);
  S->stop();
}

TEST_F(ServeServerTest, OverloadShedsExplicitly) {
  ServerConfig Config;
  Config.Admission.MaxQueueDepth = 0; // Everything sheds, deterministically.
  auto S = startServer(Config);
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  RunRequest Req;
  Req.WorkloadName = "md5sum";
  Req.Scale = 16;
  RespStatus St;
  std::string Body;
  ASSERT_TRUE(
      Client.request(MsgType::Run, formatRunRequest(Req), St, Body));
  EXPECT_EQ(St, RespStatus::RejectedOverload);
  ServerStats Stats = S->stats();
  EXPECT_EQ(Stats.Shed, 1u);
  EXPECT_EQ(Stats.ShedQueueFull, 1u);
  EXPECT_EQ(Stats.Admitted, 0u);
  S->stop();
}

TEST_F(ServeServerTest, TinyDeadlineRepliesDeadlineExceeded) {
  auto S = startServer(ServerConfig{});
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  RunRequest Req;
  Req.WorkloadName = "kmeans";
  Req.Scale = 4096;
  Req.DeadlineMs = 1; // Gone before (or moments after) execution starts.
  RespStatus St;
  std::string Body;
  ASSERT_TRUE(
      Client.request(MsgType::Run, formatRunRequest(Req), St, Body));
  EXPECT_EQ(St, RespStatus::DeadlineExceeded) << Body;
  S->stop();
}

TEST_F(ServeServerTest, BreakerQuarantinesRepeatedlyFaultingPlan) {
  FaultPolicy Policy;
  Policy.Seed = 1;
  Policy.Name = "task-failure-storm";
  Policy.TaskFailurePerMille = 1000; // Every parallel region faults.
  FaultInjector Faults(Policy);
  ServerConfig Config;
  Config.BreakerFailThreshold = 2;
  Config.BreakerProbeAfterSkips = 100; // Keep it open for the test.
  Config.Faults = &Faults;
  auto S = startServer(Config);
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  RunRequest Req;
  Req.WorkloadName = "md5sum";
  Req.Scale = 32;
  Req.DeadlineMs = 8000;
  RespStatus St;
  std::string Body;
  bool SawBreakerBypass = false;
  for (int I = 0; I < 6; ++I) {
    ASSERT_TRUE(
        Client.request(MsgType::Run, formatRunRequest(Req), St, Body));
    // Every reply is still a correct answer: degraded, never wrong.
    EXPECT_EQ(St, RespStatus::Degraded) << Body;
    EXPECT_FALSE(kvOf(Body, "checksum").empty());
    if (kvOf(Body, "breaker") == "open")
      SawBreakerBypass = true;
  }
  EXPECT_TRUE(SawBreakerBypass)
      << "after repeated faults the plan must be quarantined";
  EXPECT_GE(S->stats().Cache.BreakerTrips, 1u);
  S->stop();
}

TEST_F(ServeServerTest, StopIsIdempotentAndDoesNotHang) {
  auto S = startServer(ServerConfig{});
  ASSERT_TRUE(S);
  SyncClient Client;
  ASSERT_TRUE(Client.connect(S->port()));
  uint64_t T0 = steadyNowNs();
  S->stop();
  S->stop(); // Second stop is a no-op.
  EXPECT_FALSE(S->running());
  EXPECT_LT((steadyNowNs() - T0) / 1000000ull, 10000u);
}

} // namespace
