//===- SimTest.cpp - Discrete-event simulator unit tests ------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/ThreadPool.h"
#include "commset/Sim/SimPlatform.h"

#include <gtest/gtest.h>

using namespace commset;

namespace {

TEST(SimTest, ChargeAccumulates) {
  SimPlatform P(1, SyncMode::Mutex);
  P.charge(0, 100);
  P.charge(0, 250);
  EXPECT_EQ(P.threadTimeNs(0), 350u);
  EXPECT_EQ(P.elapsedNs(), 350u);
}

TEST(SimTest, SendRecvAddsLatency) {
  SimParams Params;
  SimPlatform P(2, SyncMode::Mutex, Params);
  P.regionBegin(0);
  P.charge(0, 1000);
  P.send(0, 1, RtValue::ofInt(42)); // Sender pays SendOverhead.
  EXPECT_EQ(P.threadTimeNs(0), 1000 + Params.SendOverhead);

  // An early receiver waits for the message's ready time.
  RtValue V = P.recv(0, 1);
  EXPECT_EQ(V.I, 42);
  EXPECT_EQ(P.threadTimeNs(1), 1000 + Params.SendOverhead +
                                   Params.CommLatency +
                                   Params.RecvOverhead);
}

TEST(SimTest, LateReceiverKeepsOwnClock) {
  SimParams Params;
  SimPlatform P(2, SyncMode::Mutex, Params);
  P.regionBegin(0);
  P.send(0, 1, RtValue::ofInt(7));
  P.charge(1, 500000); // Receiver is far past the ready time.
  P.recv(0, 1);
  EXPECT_EQ(P.threadTimeNs(1), 500000 + Params.RecvOverhead);
}

TEST(SimTest, FifoOrderPerPair) {
  SimPlatform P(2, SyncMode::Mutex);
  P.regionBegin(0);
  for (int I = 0; I < 10; ++I)
    P.send(0, 1, RtValue::ofInt(I));
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(P.recv(0, 1).I, I);
}

TEST(SimTest, BackpressureSyncsSenderToPopTimes) {
  SimParams Params;
  Params.QueueCapacity = 4;
  SimPlatform P(2, SyncMode::Mutex, Params);
  P.regionBegin(0);

  // Consumer drains slowly on its own thread; producer floods.
  std::vector<std::function<void()>> Tasks;
  Tasks.push_back([&] {
    for (int I = 0; I < 64; ++I)
      P.send(0, 1, RtValue::ofInt(I));
    P.threadDone(0);
  });
  Tasks.push_back([&] {
    for (int I = 0; I < 64; ++I) {
      P.charge(1, 10000); // 10us of consumer work per item.
      EXPECT_EQ(P.recv(0, 1).I, I);
    }
    P.threadDone(1);
  });
  runParallel(Tasks);

  // Without backpressure the producer would finish at ~64*SendOverhead;
  // with capacity 4 its clock must track the consumer's pop times.
  EXPECT_GT(P.threadTimeNs(0), 64u * 10000 / 2);
}

TEST(SimTest, ContendedLocksSerializeInVirtualTime) {
  SimParams Params;
  SimPlatform P(4, SyncMode::Mutex, Params);
  P.regionBegin(0);
  std::vector<unsigned> Ranks = {0};

  std::vector<std::function<void()>> Tasks;
  for (unsigned T = 0; T < 4; ++T)
    Tasks.push_back([&, T] {
      for (int I = 0; I < 10; ++I) {
        P.lockEnter(T, Ranks);
        P.charge(T, 1000); // Critical section.
        P.lockExit(T, Ranks);
      }
      P.threadDone(T);
    });
  runParallel(Tasks);

  // 40 critical sections of 1us must serialize: the max clock is at least
  // the total critical work, regardless of the host's schedule.
  EXPECT_GE(P.elapsedNs(), 40u * 1000);
  EXPECT_GT(P.lockContentions(), 0u);
}

TEST(SimTest, SpinHandoffCheaperThanMutex) {
  auto contendFor = [](SyncMode Mode) {
    SimParams Params;
    SimPlatform P(4, Mode, Params);
    P.regionBegin(0);
    std::vector<unsigned> Ranks = {0};
    std::vector<std::function<void()>> Tasks;
    for (unsigned T = 0; T < 4; ++T)
      Tasks.push_back([&, T] {
        for (int I = 0; I < 25; ++I) {
          P.lockEnter(T, Ranks);
          P.charge(T, 300);
          P.lockExit(T, Ranks);
        }
        P.threadDone(T);
      });
    runParallel(Tasks);
    return P.elapsedNs();
  };
  EXPECT_GT(contendFor(SyncMode::Mutex), contendFor(SyncMode::Spin))
      << "mutex sleep/wakeup hand-off must cost more under contention";
}

TEST(SimTest, TmConflictWindowsAbort) {
  SimParams Params;
  SimPlatform P(2, SyncMode::Tm, Params);
  P.regionBegin(0);
  std::vector<unsigned> Ranks = {0};

  // Two overlapping transactions on the same rank: the second commit must
  // observe the first and abort at least once.
  P.txBegin(0);
  P.txBegin(1);
  P.charge(0, 100);
  P.charge(1, 120);
  EXPECT_TRUE(P.txCommit(0, Ranks, 100));
  P.threadDone(0); // Retire thread 0's clock from the virtual-time gate.
  EXPECT_FALSE(P.txCommit(1, Ranks, 120)) << "overlap must conflict";
  P.txBegin(1);
  P.charge(1, 50);
  EXPECT_TRUE(P.txCommit(1, Ranks, 50));
  EXPECT_EQ(P.tmAborts(), 1u);
}

TEST(SimTest, RegionBracketsAlignClocks) {
  SimPlatform P(3, SyncMode::Mutex);
  P.charge(0, 5000); // Sequential prefix on the master.
  P.regionBegin(0);
  EXPECT_EQ(P.threadTimeNs(1), 5000u);
  EXPECT_EQ(P.threadTimeNs(2), 5000u);
  P.charge(1, 777);
  P.charge(2, 9999);
  P.threadDone(1);
  P.threadDone(2);
  P.regionEnd(0);
  EXPECT_EQ(P.threadTimeNs(0), 5000u + 9999u) << "join takes the max";
}

TEST(SimTest, ResourceSerialization) {
  SimParams Params;
  SimPlatform P(2, SyncMode::None, Params);
  P.regionBegin(0);
  std::vector<std::function<void()>> Tasks;
  for (unsigned T = 0; T < 2; ++T)
    Tasks.push_back([&, T] {
      for (int I = 0; I < 20; ++I) {
        P.resourceEnter(T, "fs");
        P.charge(T, 2000);
        P.resourceExit(T, "fs");
      }
      P.threadDone(T);
    });
  runParallel(Tasks);
  EXPECT_GE(P.elapsedNs(), 40u * 2000)
      << "a serialized library resource admits one holder at a time";
}

} // namespace
