//===- TestHelpers.h - Shared test utilities ---------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#ifndef COMMSET_TESTS_TESTHELPERS_H
#define COMMSET_TESTS_TESTHELPERS_H

#include "commset/IR/Verifier.h"
#include "commset/Lang/Parser.h"
#include "commset/Lang/Sema.h"
#include "commset/Lower/Lower.h"
#include "commset/Lower/Specialize.h"

#include <gtest/gtest.h>

namespace commset {
namespace test {

/// Runs the full frontend pipeline (parse, sema, specialize, lower, verify)
/// and returns the verified module alongside the program (which owns
/// predicate ASTs referenced by later passes).
struct Compiled {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<Module> Mod;
};

inline Compiled compile(const std::string &Source) {
  DiagnosticEngine Diags;
  Compiled Result;
  Result.Prog = Parser::parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  if (Diags.hasErrors())
    return Result;
  Sema S(*Result.Prog, Diags);
  EXPECT_TRUE(S.run()) << Diags.str();
  if (Diags.hasErrors())
    return Result;
  EXPECT_TRUE(specializeNamedBlocks(*Result.Prog, Diags)) << Diags.str();
  if (Diags.hasErrors())
    return Result;
  {
    Sema S2(*Result.Prog, Diags);
    EXPECT_TRUE(S2.run()) << Diags.str();
    if (Diags.hasErrors())
      return Result;
  }
  Result.Mod = lowerProgram(*Result.Prog, Diags);
  EXPECT_NE(Result.Mod.get(), nullptr) << Diags.str();
  if (Result.Mod)
    EXPECT_TRUE(verifyModule(*Result.Mod, Diags)) << Diags.str();
  return Result;
}

/// The paper's Figure 1 running example, transliterated to CSet-C with
/// synthetic-filesystem native kernels. Used across analysis, transform and
/// execution tests.
inline const char *md5sumSource() {
  return R"(
extern ptr fs_open(int fileid);
extern int fs_read(ptr f, ptr buf, int n);
extern void fs_close(ptr f);
extern ptr buf_alloc(int n);
extern void buf_free(ptr b);
extern ptr md5_init();
extern void md5_update(ptr st, ptr buf, int n);
extern int md5_final(ptr st);
extern void print_digest(int i, int d);
#pragma commset effects(fs_open, malloc, reads(fs), writes(fs))
#pragma commset effects(fs_read, argmem, reads(fs), writes(fs))
#pragma commset effects(fs_close, reads(fs), writes(fs))
#pragma commset effects(buf_alloc, malloc)
#pragma commset effects(buf_free, argmem)
#pragma commset effects(md5_init, malloc)
#pragma commset effects(md5_update, argmem)
#pragma commset effects(md5_final, argmem)
#pragma commset effects(print_digest, reads(console), writes(console))
#pragma commset decl(FSET)
#pragma commset decl(SSET, self)
#pragma commset predicate(FSET, (int i1), (int i2), i1 != i2)
#pragma commset predicate(SSET, (int i1), (int i2), i1 != i2)
#pragma commset namedarg(READB)
void mdfile(ptr st, ptr f, int i) {
  ptr buf = buf_alloc(4096);
  int n = 1;
  while (n > 0) {
    #pragma commset namedblock(READB)
    {
      n = fs_read(f, buf, 4096);
    }
    if (n > 0) {
      md5_update(st, buf, n);
    }
  }
  buf_free(buf);
}
void main_loop(int nfiles) {
  for (int i = 0; i < nfiles; i = i + 1) {
    ptr f;
    #pragma commset member(SELF, FSET(i))
    {
      f = fs_open(i);
    }
    ptr st = md5_init();
    #pragma commset enable(READB: SSET(i), FSET(i))
    mdfile(st, f, i);
    int d = md5_final(st);
    #pragma commset member(SELF, FSET(i))
    {
      print_digest(i, d);
      fs_close(f);
    }
  }
}
)";
}

} // namespace test
} // namespace commset

#endif // COMMSET_TESTS_TESTHELPERS_H
