//===- TraceTest.cpp - CommTrace tracer, metrics, exporter tests ----------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Trace/Export.h"
#include "commset/Trace/Metrics.h"
#include "commset/Trace/Trace.h"

#include "commset/Driver/Runner.h"
#include "commset/Runtime/Locks.h"
#include "commset/Runtime/SpscQueue.h"
#include "commset/Workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using namespace commset;
using namespace commset::trace;

namespace {

/// Stops the global session on scope exit so a failing assertion cannot
/// leave tracing armed for unrelated tests.
struct SessionGuard {
  ~SessionGuard() { session().disable(); }
};

TEST(TraceSessionTest, DisabledEmitIsNoOp) {
  SessionGuard G;
  session().disable();
  ASSERT_FALSE(enabled());
  for (int I = 0; I < 1000; ++I)
    emit(EventKind::LockAcquire, 0, 1, 2);
  session().enable(16, 1);
  EXPECT_EQ(session().collect().size(), 0u);
  EXPECT_EQ(session().dropped(), 0u);
}

TEST(TraceSessionTest, RecordsAndCollectsInOrder) {
  SessionGuard G;
  session().enable(64, 2);
  ASSERT_TRUE(enabled());
  emit(EventKind::RegionBegin, 0, 1, 4);
  emit(EventKind::TaskDispatch, 1);
  emit(EventKind::TaskComplete, 1);
  emit(EventKind::RegionEnd, 0);
  session().disable();
  EXPECT_FALSE(enabled());

  std::vector<TraceEvent> Events = session().collect();
  ASSERT_EQ(Events.size(), 4u);
  // Sorted by (ts, tid); timestamps are monotone per thread.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TsNs, Events[I].TsNs);
  unsigned Begins = 0, Ends = 0;
  for (const TraceEvent &E : Events) {
    Begins += E.Kind == static_cast<uint32_t>(EventKind::RegionBegin);
    Ends += E.Kind == static_cast<uint32_t>(EventKind::RegionEnd);
  }
  EXPECT_EQ(Begins, 1u);
  EXPECT_EQ(Ends, 1u);
}

TEST(TraceSessionTest, FullRingDropsAndCounts) {
  SessionGuard G;
  constexpr size_t Cap = 32;
  session().enable(Cap, 1);
  for (unsigned I = 0; I < 3 * Cap; ++I)
    emit(EventKind::LockAcquire, 0, I, 0);
  session().disable();

  std::vector<TraceEvent> Events = session().collect();
  EXPECT_EQ(Events.size(), Cap);
  EXPECT_EQ(session().dropped(), 2 * Cap);
  // Drop-newest: the retained window is the *first* Cap events.
  std::vector<uint64_t> Ranks;
  for (const TraceEvent &E : Events)
    Ranks.push_back(E.A);
  std::sort(Ranks.begin(), Ranks.end());
  for (size_t I = 0; I < Cap; ++I)
    EXPECT_EQ(Ranks[I], I);
}

TEST(TraceSessionTest, OutOfRangeTidLandsInLastRingWithTruthfulTid) {
  SessionGuard G;
  session().enable(64, 2);
  emit(EventKind::LockAcquire, 57, 3, 0);
  session().disable();
  std::vector<TraceEvent> Events = session().collect();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Tid, 57u);
}

TEST(TraceSessionTest, ConcurrentEmissionLosesNothingBelowCapacity) {
  SessionGuard G;
  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 2000;
  session().enable(PerThread + 16, Threads);
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([T] {
      for (unsigned I = 0; I < PerThread; ++I)
        emit(EventKind::QueuePush, T, T, I);
    });
  for (std::thread &W : Workers)
    W.join();
  session().disable();

  std::vector<TraceEvent> Events = session().collect();
  EXPECT_EQ(Events.size(), Threads * PerThread);
  EXPECT_EQ(session().dropped(), 0u);
  uint64_t PerTid[Threads] = {};
  for (const TraceEvent &E : Events) {
    ASSERT_LT(E.Tid, Threads);
    ++PerTid[E.Tid];
  }
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_EQ(PerTid[T], PerThread);
}

TEST(TraceSessionTest, InternedNamesAreStableAndResolvable) {
  SessionGuard G;
  uint64_t A = session().internName("md5_update");
  uint64_t B = session().internName("print_result");
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
  EXPECT_EQ(session().internName("md5_update"), A);
  EXPECT_EQ(session().nameOf(A), "md5_update");
  EXPECT_EQ(session().nameOf(B), "print_result");
  EXPECT_EQ(session().nameOf(0), "");
}

/// Synthetic, fully-known event sequence used by the metrics and exporter
/// tests: one region with two tasks, a contended lock, an STM abort+commit,
/// and queue traffic.
std::vector<TraceEvent> syntheticEvents(TraceSession &S) {
  uint64_t SetId = S.internName("cache_insert");
  auto Ev = [](uint64_t Ts, EventKind K, uint32_t Tid, uint64_t A = 0,
               uint64_t B = 0) {
    return TraceEvent{Ts, static_cast<uint32_t>(K), Tid, A, B};
  };
  return {
      Ev(100, EventKind::RegionBegin, 0, 0, 2),
      Ev(110, EventKind::TaskDispatch, 0),
      Ev(120, EventKind::TaskDispatch, 1),
      Ev(130, EventKind::LockContend, 1, 7),
      Ev(150, EventKind::LockAcquire, 1, 7, 20),
      Ev(160, EventKind::LockRelease, 1, 7),
      Ev(170, EventKind::LockAcquire, 0, 7, 0),
      Ev(180, EventKind::LockRelease, 0, 7),
      Ev(200, EventKind::StmBegin, 1, SetId, 1),
      Ev(210, EventKind::StmAbort, 1, SetId, 1),
      Ev(215, EventKind::StmRetry, 1, SetId, 1),
      Ev(220, EventKind::StmBegin, 1, SetId, 2),
      Ev(230, EventKind::StmCommit, 1, SetId, 2),
      Ev(240, EventKind::QueuePush, 0, (0u << 16) | 1u, 1),
      Ev(250, EventKind::QueuePop, 1, (0u << 16) | 1u, 0),
      Ev(260, EventKind::QueueBlock, 1, (0u << 16) | 1u, 35),
      Ev(300, EventKind::TaskComplete, 0),
      Ev(310, EventKind::TaskComplete, 1),
      Ev(320, EventKind::RegionEnd, 0),
  };
}

TEST(TraceMetricsTest, AggregatesExactCounts) {
  SessionGuard G;
  TraceSession &S = session();
  std::vector<TraceEvent> Events = syntheticEvents(S);
  TraceMetrics M = aggregateMetrics(Events, S);

  EXPECT_EQ(M.Events, Events.size());
  EXPECT_EQ(M.Regions, 1u);
  EXPECT_EQ(M.RegionNs, 220u); // 320 - 100.

  ASSERT_EQ(M.Locks.count(7u), 1u);
  EXPECT_EQ(M.Locks.at(7u).Acquires, 2u);
  EXPECT_EQ(M.Locks.at(7u).Contentions, 1u);
  EXPECT_EQ(M.Locks.at(7u).WaitNs, 20u);
  EXPECT_EQ(M.Locks.at(7u).MaxWaitNs, 20u);
  EXPECT_EQ(M.totalLockContentions(), 1u);

  EXPECT_EQ(M.StmBegins, 2u);
  EXPECT_EQ(M.StmCommits, 1u);
  EXPECT_EQ(M.StmAborts, 1u);
  EXPECT_EQ(M.StmRetries, 1u);
  EXPECT_EQ(M.StmExhausts, 0u);
  ASSERT_EQ(M.StmSets.size(), 1u);
  const StmSetStats &Set = M.StmSets.begin()->second;
  EXPECT_EQ(Set.Name, "cache_insert");
  EXPECT_DOUBLE_EQ(Set.abortRate(), 0.5);

  uint64_t Qid = (0u << 16) | 1u;
  ASSERT_EQ(M.Queues.count(Qid), 1u);
  EXPECT_EQ(M.Queues.at(Qid).Pushes, 1u);
  EXPECT_EQ(M.Queues.at(Qid).Pops, 1u);
  EXPECT_EQ(M.Queues.at(Qid).Blocks, 1u);
  EXPECT_EQ(M.Queues.at(Qid).BlockNs, 35u);
  EXPECT_EQ(M.QueueBlockNs, 35u);

  ASSERT_EQ(M.Workers.count(0u), 1u);
  ASSERT_EQ(M.Workers.count(1u), 1u);
  EXPECT_EQ(M.Workers.at(0u).Tasks, 1u);
  EXPECT_EQ(M.Workers.at(0u).BusyNs, 190u); // 300 - 110.
  EXPECT_EQ(M.Workers.at(1u).BusyNs, 190u); // 310 - 120.
  EXPECT_EQ(M.TaskNs.count(), 2u);
  EXPECT_EQ(M.TaskNs.max(), 190u);
}

TEST(TraceMetricsTest, LogHistogramBucketsAndPercentiles) {
  LogHistogram H;
  EXPECT_EQ(H.percentileUpperBound(95), 0u);
  for (uint64_t V : {0u, 1u, 2u, 3u, 4u, 1000u})
    H.add(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 1010u);
  EXPECT_EQ(H.max(), 1000u);
  // Bucket layout: 0..1 -> bucket 0, [2^I, 2^(I+1)) -> bucket I.
  EXPECT_EQ(LogHistogram::bucketFor(0), 0u);
  EXPECT_EQ(LogHistogram::bucketFor(1), 0u);
  EXPECT_EQ(LogHistogram::bucketFor(2), 1u);
  EXPECT_EQ(LogHistogram::bucketFor(3), 1u);
  EXPECT_EQ(LogHistogram::bucketFor(4), 2u);
  EXPECT_EQ(LogHistogram::bucketFor(1000), 9u);
  // The bucket's inclusive upper bound covers every value it holds.
  for (uint64_t V : {0u, 1u, 2u, 3u, 4u, 7u, 8u, 1000u, 4096u})
    EXPECT_GE(LogHistogram::bucketUpperBound(LogHistogram::bucketFor(V)), V);
  // p100 reaches the bucket holding the max; p50 stays low.
  EXPECT_GE(H.percentileUpperBound(100), 1000u);
  EXPECT_LE(H.percentileUpperBound(50), 3u);
}

TEST(TraceExportTest, ChromeJsonValidatesAndNamesSpans) {
  SessionGuard G;
  TraceSession &S = session();
  std::vector<TraceEvent> Events = syntheticEvents(S);
  std::string Json = chromeTraceJson(Events, S);

  std::string Err;
  EXPECT_TRUE(validateChromeTrace(Json, &Err)) << Err;
  // Span/instant content the exporter must produce.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("region:"), std::string::npos);
  EXPECT_NE(Json.find("\"task\""), std::string::npos);
  EXPECT_NE(Json.find("lock-acquire"), std::string::npos);
  EXPECT_NE(Json.find("stm-abort"), std::string::npos);
  EXPECT_NE(Json.find("commset-w1"), std::string::npos);
}

TEST(TraceExportTest, DanglingSpansAreRepaired) {
  SessionGuard G;
  TraceSession &S = session();
  // A truncated run: task dispatched, never completed (e.g. ring filled or
  // a fault killed the worker). The exporter must close the span itself.
  std::vector<TraceEvent> Events = {
      {100, static_cast<uint32_t>(EventKind::RegionBegin), 0, 0, 1},
      {110, static_cast<uint32_t>(EventKind::TaskDispatch), 1, 0, 0},
  };
  std::string Json = chromeTraceJson(Events, S);
  std::string Err;
  EXPECT_TRUE(validateChromeTrace(Json, &Err)) << Err;
}

TEST(TraceExportTest, ValidatorRejectsMalformedTraces) {
  std::string Err;
  EXPECT_FALSE(validateChromeTrace("", &Err));
  EXPECT_FALSE(validateChromeTrace("not json", &Err));
  EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": []}", &Err));
  // Unbalanced: B without E.
  EXPECT_FALSE(validateChromeTrace(
      "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"B\", \"ts\": 1, "
      "\"pid\": 1, \"tid\": 0}]}",
      &Err));
  EXPECT_NE(Err.find("unclosed"), std::string::npos) << Err;
  // Non-monotone timestamps on one thread.
  EXPECT_FALSE(validateChromeTrace(
      "{\"traceEvents\": ["
      "{\"name\": \"a\", \"ph\": \"i\", \"ts\": 5, \"pid\": 1, \"tid\": 0},"
      "{\"name\": \"b\", \"ph\": \"i\", \"ts\": 2, \"pid\": 1, \"tid\": 0}"
      "]}",
      &Err));
}

TEST(TraceExportTest, ProfileReportListsHeadlineSections) {
  SessionGuard G;
  TraceSession &S = session();
  TraceMetrics M = aggregateMetrics(syntheticEvents(S), S);
  std::string Report = profileReport(M);
  EXPECT_NE(Report.find("CommTrace profile"), std::string::npos);
  EXPECT_NE(Report.find("commset-w0"), std::string::npos);
  EXPECT_NE(Report.find("rank 7"), std::string::npos);
  EXPECT_NE(Report.find("cache_insert"), std::string::npos);
  EXPECT_NE(Report.find("lock wait"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Instrumented-primitive attribution (queues, locks, scheduler)
//===----------------------------------------------------------------------===//

TEST(TraceQueueTest, OccupancyIsComputedAfterTheOperation) {
  // Regression: tryPush/tryPop used to report occupancy from the indices
  // read for the full/empty pre-check. The traced depth is the depth
  // *after* the operation from re-read indices: push K reports K entries,
  // pop with K remaining reports K — and a concurrent drain between the
  // pre-check and the emit can only shrink, never inflate, the report.
  SessionGuard G;
  session().enable(64, 4);
  SpscQueue<int> Q(8);
  Q.setTraceIds(/*QueueId=*/5, /*Producer=*/1, /*Consumer=*/2);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Q.tryPush(I));
  int V = 0;
  ASSERT_TRUE(Q.tryPop(V));
  ASSERT_TRUE(Q.tryPop(V));
  session().disable();

  std::vector<uint64_t> PushDepths, PopDepths;
  for (const TraceEvent &E : session().collect()) {
    if (E.Kind == static_cast<uint32_t>(EventKind::QueuePush)) {
      EXPECT_EQ(E.Tid, 1u);
      EXPECT_EQ(E.A, 5u);
      PushDepths.push_back(E.B);
    } else if (E.Kind == static_cast<uint32_t>(EventKind::QueuePop)) {
      EXPECT_EQ(E.Tid, 2u);
      EXPECT_EQ(E.A, 5u);
      PopDepths.push_back(E.B);
    }
  }
  EXPECT_EQ(PushDepths, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(PopDepths, (std::vector<uint64_t>{2, 1}));
}

TEST(TraceQueueTest, PoisonAttributesCallerOrExternal) {
  // Regression: poison() hardcoded the consumer tid, blaming the consumer
  // for cancellations initiated by a producer or by the supervisor.
  SessionGuard G;
  session().enable(64, 4);
  SpscQueue<int> ByProducer(4);
  ByProducer.setTraceIds(/*QueueId=*/1, /*Producer=*/3, /*Consumer=*/4);
  ByProducer.poison(/*ByTid=*/3);
  ByProducer.poison(3); // Idempotent: no second event.
  SpscQueue<int> BySupervisor(4);
  BySupervisor.setTraceIds(/*QueueId=*/2, /*Producer=*/3, /*Consumer=*/4);
  BySupervisor.poison(); // No endpoint: external cancellation.
  session().disable();

  unsigned Poisons = 0;
  for (const TraceEvent &E : session().collect()) {
    if (E.Kind != static_cast<uint32_t>(EventKind::QueuePoison))
      continue;
    ++Poisons;
    if (E.A == 1)
      EXPECT_EQ(E.Tid, 3u) << "producer-initiated poison blames producer";
    else if (E.A == 2)
      EXPECT_EQ(E.Tid, SpscQueue<int>::PoisonExternalTid)
          << "endpoint-less poison must not blame the consumer";
    else
      ADD_FAILURE() << "unexpected queue id " << E.A;
  }
  EXPECT_EQ(Poisons, 2u);
}

TEST(TraceLockTest, UntimedAcquireAttributesReleaseToHolder) {
  // Regression: acquire() never recorded the holder, so release() traced
  // LockRelease against tid 0 regardless of who actually held the lock.
  SessionGuard G;
  session().enable(64, 8);
  CommSetLockManager Locks(2, LockMode::Mutex);
  Locks.acquire({0, 1}, /*ThreadId=*/3);
  Locks.release({0, 1});
  session().disable();

  unsigned Releases = 0;
  for (const TraceEvent &E : session().collect()) {
    if (E.Kind != static_cast<uint32_t>(EventKind::LockRelease))
      continue;
    ++Releases;
    EXPECT_EQ(E.Tid, 3u) << "release must attribute to the real holder";
  }
  EXPECT_EQ(Releases, 2u);
}

TEST(TraceMetricsTest, ChunkClaimsAndStealsFoldIntoWorkerStats) {
  SessionGuard G;
  TraceSession &S = session();
  auto Ev = [](uint64_t Ts, EventKind K, uint32_t Tid, uint64_t A = 0,
               uint64_t B = 0) {
    return TraceEvent{Ts, static_cast<uint32_t>(K), Tid, A, B};
  };
  // Worker 0 claims 8+4, worker 1 claims 8; worker 1 then steals 4 of
  // worker 0's iterations, which move between the per-worker totals.
  std::vector<TraceEvent> Events = {
      Ev(10, EventKind::ChunkClaim, 0, 0, 8),
      Ev(20, EventKind::ChunkClaim, 1, 8, 8),
      Ev(30, EventKind::ChunkClaim, 0, 16, 4),
      Ev(40, EventKind::Steal, 1, /*victim=*/0, /*iters=*/4),
  };
  TraceMetrics M = aggregateMetrics(Events, S);
  EXPECT_EQ(M.totalClaims(), 3u);
  EXPECT_EQ(M.totalSteals(), 1u);
  EXPECT_EQ(M.Workers[0].Claims, 2u);
  EXPECT_EQ(M.Workers[0].ClaimedIters, 8u); // 12 claimed - 4 stolen away
  EXPECT_EQ(M.Workers[1].Steals, 1u);
  EXPECT_EQ(M.Workers[1].StolenIters, 4u);
  EXPECT_EQ(M.Workers[1].ClaimedIters, 8u);
  // 8 vs 12 executed iterations across two claiming workers:
  // max * N / sum = 12 * 2 / 20.
  EXPECT_DOUBLE_EQ(M.claimImbalance(), 1.2);
}

TEST(TraceIntegrationTest, TracedThreadedRunProducesValidTrace) {
  SessionGuard G;
  auto W = makeWorkload("md5sum");
  ASSERT_NE(W, nullptr);
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(W->source(""), Diags);
  ASSERT_NE(C, nullptr) << Diags.str();
  auto T = C->analyzeLoop(W->entry(), Diags);
  ASSERT_NE(T, nullptr) << Diags.str();

  PlanOptions Opts;
  Opts.NumThreads = 4;
  Opts.Sync = SyncMode::Mutex;
  for (auto &[K, Cost] : W->costHints())
    Opts.NativeCostHints[K] = Cost;
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  const SchemeReport *Doall = nullptr;
  for (const SchemeReport &R : Schemes)
    if (R.Kind == Strategy::Doall)
      Doall = &R;
  ASSERT_NE(Doall, nullptr);
  ASSERT_TRUE(Doall->Applicable);

  NativeRegistry Natives;
  W->reset();
  W->registerNatives(Natives);
  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = false;
  Config.Trace = true;
  RunOutcome Out = runScheme(*C, T->F, W->args(64), Natives, Config);
  ASSERT_EQ(Out.Status, RunStatus::Ok) << Out.Diagnostic;
  EXPECT_GT(Out.TraceEvents, 0u);

  std::vector<TraceEvent> Events = session().collect();
  ASSERT_FALSE(Events.empty());
  std::string Json = chromeTraceJson(Events, session());
  std::string Err;
  EXPECT_TRUE(validateChromeTrace(Json, &Err)) << Err;

  TraceMetrics M = aggregateMetrics(Events, session());
  EXPECT_EQ(M.Regions, 1u);
  EXPECT_EQ(M.Workers.size(), 4u);
  EXPECT_GT(M.MemberCalls, 0u);
}

} // namespace
