//===- VerifierTest.cpp - IR verifier negative cases ----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Pins the verifier's COMMSET reference check: a lowered member (or region)
// that cites a set name absent from the program's declarations must be
// rejected, because every later stage (registry, Algorithm 1, sync planning)
// indexes sets by those names and would silently mis-scope the membership.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace commset;
using namespace commset::test;

namespace {

const char *reductionSource() {
  return R"(
int acc = 0;
#pragma commset decl(S, self)
#pragma commset member(S)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(i);
  }
  return acc;
}
)";
}

TEST(VerifierTest, MemberCitingDeclaredSetVerifies) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  std::set<std::string> Declared = {"S"};
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(*C.Mod, Diags, &Declared)) << Diags.str();
}

TEST(VerifierTest, MemberCitingUndeclaredSetIsRejected) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);

  // Corrupt the lowered membership the way a buggy rename/specialization
  // pass would: point it at a set nothing declares.
  Function *Add = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "add")
      Add = F.get();
  ASSERT_NE(Add, nullptr);
  ASSERT_FALSE(Add->Members.empty());
  Add->Members.front().SetName = "GHOST";

  std::set<std::string> Declared = {"S"};
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyModule(*C.Mod, Diags, &Declared));
  EXPECT_TRUE(Diags.contains(
      "references COMMSET 'GHOST' which is not declared in any set"))
      << Diags.str();
}

TEST(VerifierTest, SelfMembershipNeedsNoDeclaration) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  Function *Add = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "add")
      Add = F.get();
  ASSERT_NE(Add, nullptr);
  ASSERT_FALSE(Add->Members.empty());
  Add->Members.front().SetName = SelfSetKeyword;

  // SELF is implicit: valid even when the declared-set list is empty.
  std::set<std::string> Declared;
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(*C.Mod, Diags, &Declared)) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Typed-IR rules (verifyFunctionIR) — the gate before JIT compilation.
// The interpreter's register file is an untagged union, so these
// corruptions execute "successfully" there while reinterpreting bits;
// compiled code diverges. Each test corrupts a verified module the way a
// buggy lowering/transform would and asserts rejection with a message
// naming the violated rule.
//===----------------------------------------------------------------------===//

/// Finds the first instruction with opcode \p Want in \p F.
Instruction *findInstr(Function &F, Opcode Want) {
  for (auto &BB : F.Blocks)
    for (auto &I : BB->Instrs)
      if (I->op() == Want)
        return I.get();
  return nullptr;
}

TEST(VerifierTest, TypedIRAcceptsWellFormedModule) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  std::string Err;
  EXPECT_TRUE(verifyModuleIR(*C.Mod, &Err)) << Err;
}

TEST(VerifierTest, TypedIRRejectsMixedTypeArithmetic) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  Function *Add = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "add")
      Add = F.get();
  ASSERT_NE(Add, nullptr);
  Instruction *Sum = findInstr(*Add, Opcode::Add);
  ASSERT_NE(Sum, nullptr);
  ASSERT_EQ(Sum->Operands.size(), 2u);
  // An i64 add fed a float immediate: the interpreter would silently use
  // the f64 bit pattern as an integer.
  Sum->Operands[1] = Operand::constFloat(2.5);
  std::string Err;
  EXPECT_FALSE(verifyFunctionIR(*Add, *C.Mod, &Err));
  EXPECT_NE(Err.find("expected i64"), std::string::npos) << Err;
}

TEST(VerifierTest, TypedIRRejectsOutOfRangeGlobalSlot) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  Function *Add = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "add")
      Add = F.get();
  ASSERT_NE(Add, nullptr);
  Instruction *Store = findInstr(*Add, Opcode::StoreGlobal);
  ASSERT_NE(Store, nullptr);
  Store->SlotId = 99;
  std::string Err;
  EXPECT_FALSE(verifyFunctionIR(*Add, *C.Mod, &Err));
  EXPECT_NE(Err.find("global slot 99 out of range"), std::string::npos)
      << Err;
}

TEST(VerifierTest, TypedIRRejectsReturnTypeMismatch) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  Function *Main = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "main_loop")
      Main = F.get();
  ASSERT_NE(Main, nullptr);
  // Pretend the function returns f64 while its Ret still feeds an i64.
  Main->ReturnType = IRType::F64;
  std::string Err;
  EXPECT_FALSE(verifyFunctionIR(*Main, *C.Mod, &Err));
  EXPECT_NE(Err.find("expected f64"), std::string::npos) << Err;
}

} // namespace
