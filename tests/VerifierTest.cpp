//===- VerifierTest.cpp - IR verifier negative cases ----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Pins the verifier's COMMSET reference check: a lowered member (or region)
// that cites a set name absent from the program's declarations must be
// rejected, because every later stage (registry, Algorithm 1, sync planning)
// indexes sets by those names and would silently mis-scope the membership.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace commset;
using namespace commset::test;

namespace {

const char *reductionSource() {
  return R"(
int acc = 0;
#pragma commset decl(S, self)
#pragma commset member(S)
void add(int v) { acc = acc + v; }
int main_loop(int n) {
  for (int i = 0; i < n; i = i + 1) {
    add(i);
  }
  return acc;
}
)";
}

TEST(VerifierTest, MemberCitingDeclaredSetVerifies) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  std::set<std::string> Declared = {"S"};
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(*C.Mod, Diags, &Declared)) << Diags.str();
}

TEST(VerifierTest, MemberCitingUndeclaredSetIsRejected) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);

  // Corrupt the lowered membership the way a buggy rename/specialization
  // pass would: point it at a set nothing declares.
  Function *Add = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "add")
      Add = F.get();
  ASSERT_NE(Add, nullptr);
  ASSERT_FALSE(Add->Members.empty());
  Add->Members.front().SetName = "GHOST";

  std::set<std::string> Declared = {"S"};
  DiagnosticEngine Diags;
  EXPECT_FALSE(verifyModule(*C.Mod, Diags, &Declared));
  EXPECT_TRUE(Diags.contains(
      "references COMMSET 'GHOST' which is not declared in any set"))
      << Diags.str();
}

TEST(VerifierTest, SelfMembershipNeedsNoDeclaration) {
  Compiled C = compile(reductionSource());
  ASSERT_NE(C.Mod, nullptr);
  Function *Add = nullptr;
  for (const auto &F : C.Mod->Functions)
    if (F->Name == "add")
      Add = F.get();
  ASSERT_NE(Add, nullptr);
  ASSERT_FALSE(Add->Members.empty());
  Add->Members.front().SetName = SelfSetKeyword;

  // SELF is implicit: valid even when the declared-set list is empty.
  std::set<std::string> Declared;
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(*C.Mod, Diags, &Declared)) << Diags.str();
}

} // namespace
