//===- WorkloadTest.cpp - Evaluation-program tests ------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// End-to-end checks over the eight evaluation workloads: every program
// compiles and analyzes, the schemes the paper reports as applicable are
// applicable (and the inapplicable ones are rejected for the paper's
// reasons), and every parallel schedule produces output equivalent to
// sequential execution on the real-thread platform.
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Workloads/Kernels.h"
#include "commset/Workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace commset;

namespace {

//===----------------------------------------------------------------------===//
// MD5 (RFC 1321 test vectors)
//===----------------------------------------------------------------------===//

std::string md5Hex(const std::string &Text) {
  Md5 State;
  State.update(reinterpret_cast<const uint8_t *>(Text.data()), Text.size());
  return Md5::hex(State.final128());
}

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5Hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5Hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01"
                   "23456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5Hex("1234567890123456789012345678901234567890123456789012345"
                   "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, ChunkedUpdatesMatchWhole) {
  std::vector<uint8_t> Data(100000);
  Lcg Rng(42);
  for (auto &Byte : Data)
    Byte = static_cast<uint8_t>(Rng.next(256));

  Md5 Whole;
  Whole.update(Data.data(), Data.size());
  uint64_t Expected = Whole.final64();

  for (size_t Chunk : {1u, 7u, 64u, 100u, 4096u}) {
    Md5 Chunked;
    for (size_t Pos = 0; Pos < Data.size(); Pos += Chunk)
      Chunked.update(Data.data() + Pos,
                     std::min(Chunk, Data.size() - Pos));
    EXPECT_EQ(Chunked.final64(), Expected) << "chunk size " << Chunk;
  }
}

TEST(VirtualFsTest, DeterministicContentsAndEof) {
  VirtualFs Fs(4, 1000, 500);
  VirtualFs Fs2(4, 1000, 500);
  for (unsigned F = 0; F < 4; ++F) {
    EXPECT_EQ(Fs.contents(F), Fs2.contents(F));
    EXPECT_GE(Fs.fileSize(F), 1000u);
  }
  auto *H = Fs.open(1);
  std::vector<uint8_t> Buffer(256);
  size_t Total = 0, Got;
  while ((Got = Fs.read(H, Buffer.data(), Buffer.size())) > 0)
    Total += Got;
  EXPECT_EQ(Total, Fs.fileSize(1));
  EXPECT_EQ(Fs.read(H, Buffer.data(), Buffer.size()), 0u) << "EOF sticks";
}

//===----------------------------------------------------------------------===//
// Generic per-workload harness
//===----------------------------------------------------------------------===//

struct WorkloadRun {
  std::unique_ptr<Workload> W;
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  std::vector<SchemeReport> Schemes;
  NativeRegistry Natives;
};

WorkloadRun prepare(const std::string &Name, const std::string &Variant,
                    unsigned Threads, SyncMode Sync) {
  WorkloadRun R;
  R.W = makeWorkload(Name);
  EXPECT_NE(R.W.get(), nullptr) << Name;
  if (!R.W)
    return R;
  DiagnosticEngine Diags;
  R.C = Compilation::fromSource(R.W->source(Variant), Diags);
  EXPECT_NE(R.C.get(), nullptr) << Name << ": " << Diags.str();
  if (!R.C)
    return R;
  R.T = R.C->analyzeLoop(R.W->entry(), Diags);
  EXPECT_NE(R.T.get(), nullptr) << Name << ": " << Diags.str();
  if (!R.T)
    return R;
  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = Sync;
  for (auto &[K, V] : R.W->costHints())
    Opts.NativeCostHints[K] = V;
  R.Schemes = buildAllSchemes(*R.C, *R.T, Opts);
  R.W->registerNatives(R.Natives);
  return R;
}

const SchemeReport *scheme(const WorkloadRun &R, Strategy Kind) {
  for (const SchemeReport &S : R.Schemes)
    if (S.Kind == Kind)
      return &S;
  return nullptr;
}

/// Runs one scheme on the real-thread platform and returns the workload
/// checksum (resetting state first).
uint64_t runThreaded(WorkloadRun &R, const SchemeReport *S, int Scale,
                     RtValue *ResultOut = nullptr) {
  R.W->reset();
  RunConfig Config;
  Config.Simulate = false;
  if (S && S->Kind != Strategy::Sequential)
    Config.Plan = &*S->Plan;
  RunOutcome Out =
      runScheme(*R.C, R.T->F, R.W->args(Scale), R.Natives, Config);
  if (ResultOut)
    *ResultOut = Out.Result;
  return R.W->checksum();
}

class WorkloadParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadParamTest, CompilesAndAnalyzes) {
  auto R = prepare(GetParam(), "", 4, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  EXPECT_GT(R.T->G.Nodes.size(), 5u);
  EXPECT_GT(R.T->Stats.Examined, 0u) << "no call-call memory edges examined";
}

TEST_P(WorkloadParamTest, SomeParallelSchemeApplies) {
  auto R = prepare(GetParam(), "", 4, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  bool AnyParallel = false;
  for (const SchemeReport &S : R.Schemes)
    AnyParallel |= (S.Kind != Strategy::Sequential && S.Applicable);
  EXPECT_TRUE(AnyParallel) << "no parallel scheme for " << GetParam();
}

TEST_P(WorkloadParamTest, ParallelMatchesSequentialChecksum) {
  auto R = prepare(GetParam(), "", 4, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  int Scale = std::min(R.W->defaultScale(), 120);

  RtValue SeqResult;
  uint64_t SeqChecksum =
      runThreaded(R, scheme(R, Strategy::Sequential), Scale, &SeqResult);

  for (Strategy Kind :
       {Strategy::Doall, Strategy::Dswp, Strategy::PsDswp}) {
    const SchemeReport *S = scheme(R, Kind);
    if (!S || !S->Applicable)
      continue;
    RtValue ParResult;
    uint64_t ParChecksum = runThreaded(R, S, Scale, &ParResult);
    EXPECT_EQ(ParChecksum, SeqChecksum)
        << GetParam() << " under " << strategyName(Kind);
    EXPECT_EQ(ParResult.I, SeqResult.I)
        << GetParam() << " result under " << strategyName(Kind);
  }
}

TEST_P(WorkloadParamTest, SpinAndLibModesAlsoCorrect) {
  for (SyncMode Mode : {SyncMode::Spin, SyncMode::None}) {
    auto R = prepare(GetParam(), "", 4, Mode);
    ASSERT_TRUE(R.T);
    int Scale = std::min(R.W->defaultScale(), 80);
    uint64_t SeqChecksum =
        runThreaded(R, scheme(R, Strategy::Sequential), Scale);
    const SchemeReport *S = scheme(R, Strategy::Doall);
    if (!S || !S->Applicable)
      S = scheme(R, Strategy::PsDswp);
    if (!S || !S->Applicable)
      continue;
    if (Mode == SyncMode::None && GetParam() != "md5sum" &&
        GetParam() != "potrace" && GetParam() != "geti")
      continue; // Lib mode only where kernels are internally locked.
    EXPECT_EQ(runThreaded(R, S, Scale), SeqChecksum)
        << GetParam() << " mode " << syncModeName(Mode);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadParamTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// Paper-specific applicability expectations
//===----------------------------------------------------------------------===//

TEST(WorkloadSchemes, Md5sumFullEnablesDoallAndPipeline) {
  auto R = prepare("md5sum", "", 8, SyncMode::None);
  ASSERT_TRUE(R.T);
  EXPECT_TRUE(scheme(R, Strategy::Doall)->Applicable)
      << scheme(R, Strategy::Doall)->WhyNot;
  EXPECT_TRUE(scheme(R, Strategy::PsDswp)->Applicable)
      << scheme(R, Strategy::PsDswp)->WhyNot;
}

TEST(WorkloadSchemes, Md5sumDeterministicVariantBlocksDoall) {
  auto R = prepare("md5sum", "noself", 8, SyncMode::None);
  ASSERT_TRUE(R.T);
  EXPECT_FALSE(scheme(R, Strategy::Doall)->Applicable)
      << "deterministic output must force the pipeline";
  EXPECT_TRUE(scheme(R, Strategy::PsDswp)->Applicable)
      << scheme(R, Strategy::PsDswp)->WhyNot;
}

TEST(WorkloadSchemes, Md5sumPlainDoesNotParallelize) {
  auto R = prepare("md5sum", "plain", 8, SyncMode::None);
  ASSERT_TRUE(R.T);
  EXPECT_FALSE(scheme(R, Strategy::Doall)->Applicable);
  // Note a deliberate deviation from the paper: our baseline still knows
  // buf_alloc returns fresh memory, so a weak pipeline around the private
  // digest computation survives; all file operations stay in one carried
  // sequential stage. The paper's headline (COMMSET enables DOALL /
  // wide parallel stages; the baseline cannot) is preserved — compare the
  // estimated speedups.
  const SchemeReport *Ps = scheme(R, Strategy::PsDswp);
  if (Ps->Applicable) {
    auto Full = prepare("md5sum", "", 8, SyncMode::None);
    const SchemeReport *FullDoall = scheme(Full, Strategy::Doall);
    ASSERT_TRUE(FullDoall->Applicable);
    EXPECT_GT(FullDoall->Plan->EstimatedSpeedup,
              Ps->Plan->EstimatedSpeedup);
  }
}

TEST(WorkloadSchemes, Md5sumDeterministicKeepsOrder) {
  auto R = prepare("md5sum", "noself", 4, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  const SchemeReport *Ps = scheme(R, Strategy::PsDswp);
  ASSERT_TRUE(Ps->Applicable) << Ps->WhyNot;
  runThreaded(R, Ps, 64);
  auto Order = R.W->orderedOutput();
  ASSERT_EQ(Order.size(), 64u);
  for (size_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], static_cast<int64_t>(I))
        << "digest printed out of order";
}

TEST(WorkloadSchemes, Em3dHasNoDoallButPipelines) {
  auto R = prepare("em3d", "", 8, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  EXPECT_FALSE(scheme(R, Strategy::Doall)->Applicable)
      << "pointer chasing cannot DOALL (paper section 5.4)";
  EXPECT_NE(scheme(R, Strategy::Doall)->WhyNot.find("induction"),
            std::string::npos)
      << scheme(R, Strategy::Doall)->WhyNot;
  const SchemeReport *Ps = scheme(R, Strategy::PsDswp);
  EXPECT_TRUE(Ps->Applicable) << Ps->WhyNot;
  bool HasParallelStage = false;
  for (const StagePlan &Stage : Ps->Plan->Stages)
    HasParallelStage |= Stage.Parallel;
  EXPECT_TRUE(HasParallelStage);
}

TEST(WorkloadSchemes, Em3dPlainKeepsRngSequential) {
  auto R = prepare("em3d", "plain", 8, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  EXPECT_TRUE(scheme(R, Strategy::Dswp)->Applicable)
      << scheme(R, Strategy::Dswp)->WhyNot;
  // Without the RNG COMMSET, any surviving parallel stage must exclude the
  // rng calls (their carried seed dependence pins them to a sequential
  // stage); with COMMSET the scheduler is free to replicate them.
  const SchemeReport *Ps = scheme(R, Strategy::PsDswp);
  if (Ps->Applicable) {
    for (const StagePlan &Stage : Ps->Plan->Stages) {
      if (!Stage.Parallel)
        continue;
      for (unsigned Node : Stage.OwnedNodes) {
        const Instruction *Instr = R.T->G.Nodes[Node];
        if (Instr->op() == Opcode::Call)
          EXPECT_EQ(Instr->Callee->Name.find("rng"), std::string::npos)
              << "rng call replicated without commutativity";
      }
    }
  }
}

TEST(WorkloadSchemes, KmeansUpdateIsTmEligible) {
  auto R = prepare("kmeans", "", 8, SyncMode::Tm);
  ASSERT_TRUE(R.T);
  const SchemeReport *Doall = scheme(R, Strategy::Doall);
  ASSERT_TRUE(Doall->Applicable) << Doall->WhyNot;
  auto It = Doall->Plan->MemberSync.find("center_update");
  ASSERT_NE(It, Doall->Plan->MemberSync.end());
  EXPECT_TRUE(It->second.TmEligible);

  // TM execution stays correct (real STM underneath).
  int Scale = 100;
  uint64_t SeqChecksum =
      runThreaded(R, scheme(R, Strategy::Sequential), Scale);
  RtValue SeqResult;
  runThreaded(R, scheme(R, Strategy::Sequential), Scale, &SeqResult);
  RtValue TmResult;
  runThreaded(R, Doall, Scale, &TmResult);
  EXPECT_EQ(TmResult.I, SeqResult.I);
  (void)SeqChecksum;
}

TEST(WorkloadSchemes, UrlLoggerHasNoCompilerLocks) {
  auto R = prepare("url", "", 8, SyncMode::Spin);
  ASSERT_TRUE(R.T);
  const SchemeReport *Doall = scheme(R, Strategy::Doall);
  ASSERT_TRUE(Doall->Applicable) << Doall->WhyNot;
  auto Log = Doall->Plan->MemberSync.find("log_pkt");
  ASSERT_NE(Log, Doall->Plan->MemberSync.end());
  EXPECT_TRUE(Log->second.LockRanks.empty())
      << "COMMSETNOSYNC must suppress compiler locks (paper section 5.7)";
  auto Deq = Doall->Plan->MemberSync.find("pkt_dequeue");
  ASSERT_NE(Deq, Doall->Plan->MemberSync.end());
  EXPECT_FALSE(Deq->second.LockRanks.empty());
}

TEST(WorkloadSchemes, EclatStatsShareOneGroupLock) {
  auto R = prepare("eclat", "", 8, SyncMode::Mutex);
  ASSERT_TRUE(R.T);
  const SchemeReport *Doall = scheme(R, Strategy::Doall);
  ASSERT_TRUE(Doall->Applicable) << Doall->WhyNot;
  auto A = Doall->Plan->MemberSync.find("stats_count");
  auto B = Doall->Plan->MemberSync.find("stats_sum");
  ASSERT_NE(A, Doall->Plan->MemberSync.end());
  ASSERT_NE(B, Doall->Plan->MemberSync.end());
  // Both members carry the shared STATS rank (plus their SELF ranks).
  std::vector<unsigned> Common;
  std::set_intersection(A->second.LockRanks.begin(),
                        A->second.LockRanks.end(),
                        B->second.LockRanks.begin(),
                        B->second.LockRanks.end(),
                        std::back_inserter(Common));
  EXPECT_FALSE(Common.empty());
}

TEST(WorkloadSchemes, HmmerPsDswpMovesRngOffCriticalPath) {
  auto R = prepare("hmmer", "", 8, SyncMode::Spin);
  ASSERT_TRUE(R.T);
  const SchemeReport *Ps = scheme(R, Strategy::PsDswp);
  ASSERT_TRUE(Ps->Applicable) << Ps->WhyNot;
  // Expect a pipeline with at least one sequential stage (the RNG) and one
  // parallel stage (the Viterbi scoring), paper section 5.1.
  ASSERT_GE(Ps->Plan->Stages.size(), 2u);
  bool HasSeq = false, HasPar = false;
  for (const StagePlan &Stage : Ps->Plan->Stages) {
    HasSeq |= !Stage.Parallel;
    HasPar |= Stage.Parallel;
  }
  EXPECT_TRUE(HasSeq);
  EXPECT_TRUE(HasPar);
}

} // namespace
