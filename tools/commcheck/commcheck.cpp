//===- commcheck.cpp - CommCheck command-line driver ----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Differential fuzzing + schedule exploration + happens-before checking
// for the COMMSET pipeline. Typical invocations:
//
//   commcheck --seed 1 --iters 25            # smoke tier (ctest check_smoke)
//   commcheck --seed 1 --iters 200           # soak tier (TESTING.md)
//   commcheck --seed 4242 --iters 1 -v       # replay one failing trial
//   commcheck --faults --seed 1 --iters 25   # fault sweep (ctest fault_smoke)
//   commcheck --dump SEED                    # print the generated program
//
//===----------------------------------------------------------------------===//

#include "commset/Check/CommCheck.h"
#include "commset/Exec/JitBackend.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

using namespace commset::check;

namespace {

void usage(const char *Argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N          base seed (iteration k uses seed N+k; default 1)\n"
      "  --iters K         number of generated programs (default 25)\n"
      "  --threads LIST    comma-separated thread counts (default 2,4,8)\n"
      "  --sched P         pin the iteration-scheduling policy: static |\n"
      "                    dynamic | guided (default: rotate all three)\n"
      "  --no-tm           skip SyncMode::Tm plans\n"
      "  --no-priv         skip SyncMode::Priv plans\n"
      "  --sync M          restrict the sweep to one sync mode: mutex |\n"
      "                    spin | tm | none | priv\n"
      "  --reduction-heavy bias generated programs toward privatizable\n"
      "                    add-reduction members\n"
      "  --backend B       execution backend for the differential sweeps:\n"
      "                    interp | jit (default interp). jit compiles each\n"
      "                    generated module to x86-64 and differentials it\n"
      "                    against the interpreted sequential reference\n"
      "  --no-edge-ops     disable the overflow/edge-operand generator mode\n"
      "                    (INT64_MIN/MAX, -1, 0 biased into arithmetic)\n"
      "  --min-priv-pct N  fail (exit 1) unless at least N%% of the plans\n"
      "                    swept under priv actually privatized a global\n"
      "  --no-schedules    skip controlled-schedule exploration\n"
      "  --random-scheds N random schedule policies per plan (default 2)\n"
      "  --lint            CommLint cross-validation: statically lint every\n"
      "                    swept plan (an error on a sound program or a\n"
      "                    divergence on a race-free verdict fails the\n"
      "                    trial) and assert the seeded-unsound twin of\n"
      "                    every seed is flagged with its expected CL code\n"
      "  --prove           CommProve cross-validation: symbolically prove\n"
      "                    the sound program's annotated pairs (any\n"
      "                    refutation fails the trial) and assert the\n"
      "                    seeded non-commutative twin of every seed is\n"
      "                    refuted with a witness that replays to a real\n"
      "                    divergence under the controlled scheduler\n"
      "  --prove-budget N  symbolic step budget per proved order\n"
      "                    (default 4096)\n"
      "  --faults          fault sweep: re-run plans under seeded fault\n"
      "                    injection and assert the resilient engine still\n"
      "                    matches the sequential reference\n"
      "  --fault-policies N fault policies per swept plan (default 2)\n"
      "  --plan-stats      trace every sweep plan and print per-plan\n"
      "                    abort/contention/lock-wait stats\n"
      "  --trace-on-divergence  re-run a diverging plan traced and dump its\n"
      "                    Chrome trace JSON next to the failure artifact\n"
      "  --dump-dir DIR    failure artifact directory ('' disables; default .)\n"
      "  --dump SEED       print the program generated for SEED and exit\n"
      "  -v, --verbose     one line per iteration\n"
      "  -h, --help        this text\n",
      Argv0);
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseSyncMode(const std::string &S, commset::SyncMode &Out) {
  if (S == "mutex")
    Out = commset::SyncMode::Mutex;
  else if (S == "spin")
    Out = commset::SyncMode::Spin;
  else if (S == "tm")
    Out = commset::SyncMode::Tm;
  else if (S == "none")
    Out = commset::SyncMode::None;
  else if (S == "priv")
    Out = commset::SyncMode::Priv;
  else
    return false;
  return true;
}

bool parseThreadList(const std::string &S, std::vector<unsigned> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    uint64_t V = 0;
    if (!parseU64(S.substr(Pos, Comma - Pos).c_str(), V) || V == 0)
      return false;
    Out.push_back(static_cast<unsigned>(V));
    Pos = Comma + 1;
  }
  return !Out.empty();
}

} // namespace

int main(int argc, char **argv) {
  CommCheckOptions Opts;
  bool DumpOnly = false;
  bool TraceOnDivergence = false;
  uint64_t DumpSeed = 0;
  int MinPrivPct = -1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "commcheck: %s requires a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    uint64_t V = 0;
    if (Arg == "--seed") {
      if (!parseU64(needValue(), V)) {
        std::fprintf(stderr, "commcheck: bad --seed\n");
        return 2;
      }
      Opts.Seed = V;
    } else if (Arg == "--iters") {
      if (!parseU64(needValue(), V)) {
        std::fprintf(stderr, "commcheck: bad --iters\n");
        return 2;
      }
      Opts.Iterations = static_cast<unsigned>(V);
    } else if (Arg == "--threads") {
      if (!parseThreadList(needValue(), Opts.Oracle.Threads)) {
        std::fprintf(stderr, "commcheck: bad --threads list\n");
        return 2;
      }
    } else if (Arg == "--sched") {
      commset::SchedPolicy Sched;
      if (!commset::schedPolicyFromString(needValue(), Sched)) {
        std::fprintf(stderr, "commcheck: bad --sched policy\n");
        return 2;
      }
      Opts.Oracle.SchedPolicies = {Sched};
    } else if (Arg == "--lint") {
      Opts.Lint = true;
      Opts.Oracle.Lint = true;
    } else if (Arg == "--prove") {
      Opts.Prove = true;
    } else if (Arg == "--prove-budget") {
      int N = std::atoi(needValue());
      if (N <= 0) {
        std::fprintf(stderr, "commcheck: bad --prove-budget\n");
        return 2;
      }
      Opts.Prove = true;
      Opts.ProveBudget = static_cast<unsigned>(N);
    } else if (Arg == "--no-tm") {
      Opts.Oracle.IncludeTm = false;
    } else if (Arg == "--no-priv") {
      Opts.Oracle.IncludePriv = false;
    } else if (Arg == "--sync") {
      commset::SyncMode Mode;
      if (!parseSyncMode(needValue(), Mode)) {
        std::fprintf(stderr, "commcheck: bad --sync mode\n");
        return 2;
      }
      Opts.Oracle.SyncModes = {Mode};
    } else if (Arg == "--reduction-heavy") {
      Opts.Gen.ReductionHeavy = true;
    } else if (Arg == "--backend") {
      commset::ExecBackendKind Kind;
      if (!commset::execBackendFromString(needValue(), Kind)) {
        std::fprintf(stderr, "commcheck: bad --backend (interp | jit)\n");
        return 2;
      }
      if (Kind == commset::ExecBackendKind::Jit &&
          !commset::JitBackend::supported()) {
        std::fprintf(stderr, "commcheck: backend 'jit' is not supported on "
                             "this host/build\n");
        return 2;
      }
      Opts.Oracle.Backend = Kind;
    } else if (Arg == "--no-edge-ops") {
      Opts.Gen.EdgeOps = false;
    } else if (Arg == "--min-priv-pct") {
      if (!parseU64(needValue(), V) || V > 100) {
        std::fprintf(stderr, "commcheck: bad --min-priv-pct\n");
        return 2;
      }
      MinPrivPct = static_cast<int>(V);
    } else if (Arg == "--no-schedules") {
      Opts.Oracle.ExploreSchedules = false;
    } else if (Arg == "--faults") {
      Opts.Oracle.FaultSweep = true;
    } else if (Arg == "--fault-policies") {
      if (!parseU64(needValue(), V) || V == 0) {
        std::fprintf(stderr, "commcheck: bad --fault-policies\n");
        return 2;
      }
      Opts.Oracle.FaultPoliciesPerPlan = static_cast<unsigned>(V);
    } else if (Arg == "--random-scheds") {
      if (!parseU64(needValue(), V)) {
        std::fprintf(stderr, "commcheck: bad --random-scheds\n");
        return 2;
      }
      Opts.Oracle.RandomSchedules = static_cast<unsigned>(V);
    } else if (Arg == "--plan-stats") {
      Opts.Oracle.PlanStats = true;
    } else if (Arg == "--trace-on-divergence") {
      TraceOnDivergence = true;
    } else if (Arg == "--dump-dir") {
      Opts.DumpDir = needValue();
    } else if (Arg == "--dump") {
      if (!parseU64(needValue(), DumpSeed)) {
        std::fprintf(stderr, "commcheck: bad --dump seed\n");
        return 2;
      }
      DumpOnly = true;
    } else if (Arg == "-v" || Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg == "-h" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "commcheck: unknown option '%s'\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (TraceOnDivergence)
    Opts.Oracle.TraceOnDivergenceDir =
        Opts.DumpDir.empty() ? "." : Opts.DumpDir;

  if (DumpOnly) {
    GeneratedProgram P = generateProgram(DumpSeed, Opts.Gen);
    std::printf("// seed %llu  shape: %s\n// trip %d  output %s  lib-safe %s\n%s",
                static_cast<unsigned long long>(P.Seed), P.Shape.c_str(),
                P.TripCount,
                P.Output == OutputOrder::Exact          ? "exact"
                : P.Output == OutputOrder::PerKeyOrdered ? "per-key"
                                                         : "multiset",
                P.LibSafe ? "yes" : "no", P.Source.c_str());
    return 0;
  }

  try {
    CommCheckSummary Sum = runCommCheck(Opts);
    std::printf("commcheck: %u iterations, %u plans, %u schedules, "
                "%u races, %u failures\n",
                Sum.Iterations, Sum.PlansRun, Sum.SchedulesRun,
                Sum.RacesReported, Sum.Failures);
    if (Opts.Lint)
      std::printf("commcheck: lint sweep: %u plans audited, %u unsound "
                  "seeded, %u flagged\n",
                  Sum.LintedPlans, Sum.UnsoundSeeded, Sum.UnsoundFlagged);
    if (Opts.Prove)
      std::printf("commcheck: prove sweep: %u pairs proven, %u refuted, "
                  "%u undecided; %u noncomm twins seeded, %u refuted with "
                  "replaying witness\n",
                  Sum.ProvenPairs, Sum.RefutedPairs, Sum.UnknownPairs,
                  Sum.NoncommSeeded, Sum.NoncommRefuted);
    if (Opts.Oracle.FaultSweep)
      std::printf("commcheck: fault sweep: %u runs, %u degraded to "
                  "sequential, %llu faults injected, %u divergences\n",
                  Sum.FaultRuns, Sum.DegradedRuns,
                  static_cast<unsigned long long>(Sum.FaultsInjected),
                  Sum.Failures);
    if (Sum.PrivPlansRun || MinPrivPct >= 0) {
      unsigned Pct = Sum.PrivPlansRun
                         ? Sum.PrivatizedPlans * 100 / Sum.PrivPlansRun
                         : 0;
      std::printf("commcheck: priv sweep: %u plans run under priv, "
                  "%u privatized (%u%%)\n",
                  Sum.PrivPlansRun, Sum.PrivatizedPlans, Pct);
      if (MinPrivPct >= 0 && Pct < static_cast<unsigned>(MinPrivPct)) {
        std::fprintf(stderr,
                     "commcheck: priv coverage %u%% below required %d%%\n",
                     Pct, MinPrivPct);
        return 1;
      }
    }
    if (Sum.Failures) {
      std::printf("first failure:\n%s\n", Sum.FirstFailure.c_str());
      for (const std::string &Path : Sum.ArtifactPaths)
        std::printf("artifact: %s\n", Path.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "commcheck: unrecoverable internal error: %s\n",
                 E.what());
    return 3;
  }
}
