//===- commlint.cpp - CommLint command-line driver ------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Static race and annotation-soundness analyzer over lowered parallel
// plans. Compiles each input CSet-C file, plans the target loop under the
// requested sync/thread/sched configuration, and audits every applicable
// plan with CommLint (Analysis/Lint.h). Typical invocations:
//
//   commlint examples/csetc/histogram.csetc           # audit main_loop
//   commlint --sync tm --threads 8 prog.csetc         # pin the plan config
//   commlint --werror prog.csetc                      # warnings fail the run
//
// Exit code: 0 clean (or notes only), 1 warnings, 2 errors (or the input
// failed to compile / the target loop is missing).
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/CommProve.h"
#include "commset/Analysis/Lint.h"
#include "commset/Driver/Runner.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace commset;

namespace {

void usage(const char *Argv0) {
  std::printf(
      "usage: %s [options] file.csetc [file2.csetc ...]\n"
      "  --func NAME    function whose first top-level loop is audited\n"
      "                 (default main_loop)\n"
      "  --threads N    planned worker count (default 4)\n"
      "  --sync MODE    sync engine to plan with: mutex | spin | tm | none\n"
      "                 | priv (default mutex)\n"
      "  --sched P      iteration-scheduling policy: static | dynamic |\n"
      "                 guided (default guided)\n"
      "  --werror       treat warnings as errors (exit 2)\n"
      "  --prove        run CommProve: symbolically verify every annotated\n"
      "                 member pair (CL060 refuted with witness / CL061\n"
      "                 proven, downgrading CL02x / CL062 undecided) and\n"
      "                 suggest pragmas for provable unannotated pairs\n"
      "                 (CL063)\n"
      "  --prove-budget N  scale the prover's step budget (default 4096\n"
      "                 symbolic steps per operation order)\n"
      "  --explain      append the CL-code registry description to each\n"
      "                 finding\n"
      "  -q, --quiet    suppress per-finding output; summary only\n"
      "  -h, --help     this text\n"
      "exit: 0 clean/notes, 1 warnings, 2 errors or compile failure\n",
      Argv0);
}

bool syncModeFromString(const char *Name, SyncMode &Out) {
  if (!std::strcmp(Name, "mutex"))
    Out = SyncMode::Mutex;
  else if (!std::strcmp(Name, "spin"))
    Out = SyncMode::Spin;
  else if (!std::strcmp(Name, "tm"))
    Out = SyncMode::Tm;
  else if (!std::strcmp(Name, "none"))
    Out = SyncMode::None;
  else if (!std::strcmp(Name, "priv"))
    Out = SyncMode::Priv;
  else
    return false;
  return true;
}

struct LintRun {
  int ExitCode = 0;
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned Notes = 0;
  unsigned PlansAudited = 0;
  unsigned PairsProven = 0;
  unsigned PairsRefuted = 0;
  unsigned PairsUnknown = 0;
  unsigned ProofTokens = 0;
};

/// Lints one file: every applicable plan (sequential included, so the
/// annotation and consistency checkers run even when no parallelization
/// applies) with findings deduplicated across plans.
LintRun lintFile(const std::string &Path, const std::string &Func,
                 const PlanOptions &PO, bool WError, bool Explain,
                 bool Quiet, bool Prove, const ProveOptions &ProveOpts) {
  LintRun Run;

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "commlint: cannot read '%s'\n", Path.c_str());
    Run.ExitCode = 2;
    return Run;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Buf.str(), Diags);
  if (!C) {
    std::fprintf(stderr, "commlint: %s: compilation failed\n%s",
                 Path.c_str(), Diags.str().c_str());
    Run.ExitCode = 2;
    return Run;
  }
  auto T = C->analyzeLoop(Func, Diags);
  if (!T) {
    std::fprintf(stderr, "commlint: %s: no loop target in '%s'\n%s",
                 Path.c_str(), Func.c_str(), Diags.str().c_str());
    Run.ExitCode = 2;
    return Run;
  }

  // One lint pass per applicable scheme: what is concurrent (and therefore
  // what races) depends on the plan, so DOALL and DSWP can yield different
  // findings for the same loop.
  std::vector<LintDiagnostic> Merged;
  std::set<std::string> Seen;
  for (const SchemeReport &R : buildAllSchemes(*C, *T, PO)) {
    if (!R.Applicable || !R.Plan)
      continue;
    ++Run.PlansAudited;
    LintResult LR = runLint(*C, *T, *R.Plan);
    for (const LintDiagnostic &D : LR.Diags) {
      // Shared structured key (code, severity, location, message,
      // subjects): two plans producing findings that agree on all of it
      // are the same finding; anything less collapses distinct ones.
      if (Seen.insert(lint::dedupKey(D)).second)
        Merged.push_back(D);
    }
  }

  // CommProve pass: prove/refute every annotated pair once per file (the
  // verdict is a property of the member bodies, not of any plan), then
  // downgrade the effect-summary findings the proofs subsume and append
  // the prover's own diagnostics.
  if (Prove) {
    ProveResult PR = runCommProve(*C, T.get(), ProveOpts);
    Run.PairsProven = PR.Proven;
    Run.PairsRefuted = PR.Refuted;
    Run.PairsUnknown = PR.Unknown;
    Run.ProofTokens = annotateProofTokens(T->G, PR);
    applyProveDowngrades(PR, Merged);
    const std::vector<std::string> &Suppressed =
        C->program().LintSuppressions;
    for (LintDiagnostic &D : proveDiagnostics(*C, PR)) {
      if (std::find(Suppressed.begin(), Suppressed.end(), D.Code) !=
          Suppressed.end())
        continue;
      if (Seen.insert(lint::dedupKey(D)).second)
        Merged.push_back(std::move(D));
    }
  }

  std::stable_sort(Merged.begin(), Merged.end(),
                   [](const LintDiagnostic &A, const LintDiagnostic &B) {
                     if (A.Severity != B.Severity)
                       return static_cast<int>(A.Severity) >
                              static_cast<int>(B.Severity);
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     return A.Code < B.Code;
                   });

  for (const LintDiagnostic &D : Merged) {
    switch (D.Severity) {
    case LintSeverity::Error:
      ++Run.Errors;
      break;
    case LintSeverity::Warning:
      ++Run.Warnings;
      break;
    case LintSeverity::Note:
      ++Run.Notes;
      break;
    }
    if (Quiet)
      continue;
    std::printf("%s: %s\n", Path.c_str(), D.str().c_str());
    if (Explain) {
      const char *Desc = lintCodeDescription(D.Code);
      if (*Desc)
        std::printf("%s:   %s: %s\n", Path.c_str(), D.Code.c_str(), Desc);
    }
  }

  if (Run.Errors || (WError && Run.Warnings))
    Run.ExitCode = 2;
  else if (Run.Warnings)
    Run.ExitCode = 1;
  return Run;
}

} // namespace

int main(int argc, char **argv) {
  std::string Func = "main_loop";
  PlanOptions PO;
  PO.NumThreads = 4;
  PO.Sync = SyncMode::Mutex;
  PO.Sched = SchedPolicy::Guided;
  bool WError = false;
  bool Explain = false;
  bool Quiet = false;
  bool Prove = false;
  ProveOptions ProveOpts;
  std::vector<std::string> Files;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "commlint: %s requires a value\n", Arg.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Arg == "--func") {
      Func = needValue();
    } else if (Arg == "--threads") {
      int N = std::atoi(needValue());
      if (N <= 0) {
        std::fprintf(stderr, "commlint: bad --threads\n");
        return 2;
      }
      PO.NumThreads = static_cast<unsigned>(N);
    } else if (Arg == "--sync") {
      if (!syncModeFromString(needValue(), PO.Sync)) {
        std::fprintf(stderr, "commlint: bad --sync mode\n");
        return 2;
      }
    } else if (Arg == "--sched") {
      if (!schedPolicyFromString(needValue(), PO.Sched)) {
        std::fprintf(stderr, "commlint: bad --sched policy\n");
        return 2;
      }
    } else if (Arg == "--werror") {
      WError = true;
    } else if (Arg == "--prove") {
      Prove = true;
    } else if (Arg == "--prove-budget") {
      int N = std::atoi(needValue());
      if (N <= 0) {
        std::fprintf(stderr, "commlint: bad --prove-budget\n");
        return 2;
      }
      Prove = true;
      ProveOpts.StepBudget = static_cast<unsigned>(N);
      // Expression growth tracks steps; scale it along.
      ProveOpts.NodeBudget = static_cast<unsigned>(N) * 50u;
    } else if (Arg == "--explain") {
      Explain = true;
    } else if (Arg == "-q" || Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "-h" || Arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "commlint: unknown option '%s'\n", Arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      Files.push_back(Arg);
    }
  }

  if (Files.empty()) {
    usage(argv[0]);
    return 2;
  }

  int Exit = 0;
  unsigned Errors = 0, Warnings = 0, Notes = 0, Plans = 0;
  unsigned Proven = 0, Refuted = 0, Unknown = 0, Tokens = 0;
  for (const std::string &Path : Files) {
    LintRun Run =
        lintFile(Path, Func, PO, WError, Explain, Quiet, Prove, ProveOpts);
    Errors += Run.Errors;
    Warnings += Run.Warnings;
    Notes += Run.Notes;
    Plans += Run.PlansAudited;
    Proven += Run.PairsProven;
    Refuted += Run.PairsRefuted;
    Unknown += Run.PairsUnknown;
    Tokens += Run.ProofTokens;
    Exit = std::max(Exit, Run.ExitCode);
  }

  std::printf("commlint: %zu file(s), %u plan(s) audited: %u error(s), "
              "%u warning(s), %u note(s)\n",
              Files.size(), Plans, Errors, Warnings, Notes);
  if (Prove)
    std::printf("commlint: prove: %u pair(s) proven, %u refuted, "
                "%u undecided; %u PDG edge(s) carry proof tokens\n",
                Proven, Refuted, Unknown, Tokens);
  return Exit;
}
