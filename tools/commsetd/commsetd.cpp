//===- commsetd.cpp - overload-robust compile-and-execute daemon ----------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Three modes:
//
//   commsetd [--port=N] [admission/deadline flags]
//     Serve CSD1 jobs on 127.0.0.1 until SIGINT/SIGTERM.
//
//   commsetd --faults [--iters=N] [--seed=N]
//     Seeded robustness sweep: each iteration brings up an in-process
//     server under one of the serving-path fault presets (slow clients,
//     mid-request disconnects, forced compile failures, server-mixed) and
//     drives it with concurrent clients mixing valid jobs, malformed
//     frames, truncated requests and control traffic. Every completed
//     job's checksum is compared against an in-process sequential
//     reference; any divergence, crash or hang fails the sweep.
//
//   commsetd --fuzz [--iters=N] [--seed=N]
//     Seeded protocol fuzz: random and mutated frames through FrameReader
//     and parseRunRequest. Invariant violations (throw, Ready after
//     poison, oversize body accepted) fail the run.
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/Server.h"
#include "commset/Workloads/Workload.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <thread>

using namespace commset;
using namespace commset::serve;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: commsetd [mode] [options]\n"
      "\n"
      "serve mode (default):\n"
      "  --port=N              listen port (default 0 = ephemeral)\n"
      "  --max-conns=N         concurrent connection cap (default 64)\n"
      "  --cache-cap=N         compiled-plan LRU capacity (default 16)\n"
      "  --rate=R              admitted requests/sec, 0 = unlimited\n"
      "  --burst=N             admission token-bucket burst (default 16)\n"
      "  --max-queue=N         executor queue depth cap (default 32)\n"
      "  --default-deadline-ms=N  budget for requests without one\n"
      "  --max-deadline-ms=N   clamp for requested budgets\n"
      "  --recv-timeout-ms=N   idle-read cutoff per connection\n"
      "  --faults-preset=I --faults-seed=S  serve under fault injection\n"
      "\n"
      "sweep modes:\n"
      "  --faults              seeded fault sweep (see --iters, --seed)\n"
      "  --fuzz                seeded protocol fuzz\n"
      "  --iters=N             sweep iterations (default 40 / 5000 fuzz)\n"
      "  --seed=N              sweep seed (default 1)\n"
      "\n"
      "exit: 0 ok, 1 sweep failure, 64 usage\n");
}

volatile std::sig_atomic_t GotSignal = 0;
void onSignal(int) { GotSignal = 1; }

//===----------------------------------------------------------------------===//
// Sequential reference checksums
//===----------------------------------------------------------------------===//

/// Computes (and memoizes) the sequential-execution checksum for one
/// (workload, scale) pair — the oracle every served result is judged
/// against.
class ReferenceBank {
public:
  bool lookup(const std::string &Wl, int Scale, uint64_t &Out,
              std::string *Err) {
    auto Key = std::make_pair(Wl, Scale);
    auto It = Refs.find(Key);
    if (It != Refs.end()) {
      Out = It->second;
      return true;
    }
    std::unique_ptr<Workload> W = makeWorkload(Wl);
    if (!W) {
      if (Err)
        *Err = "unknown workload " + Wl;
      return false;
    }
    DiagnosticEngine Diags;
    auto C = Compilation::fromSource(W->source(), Diags);
    if (!C) {
      if (Err)
        *Err = "reference compile failed: " + Diags.str();
      return false;
    }
    auto T = C->analyzeLoop(W->entry(), Diags);
    if (!T) {
      if (Err)
        *Err = "reference analysis failed: " + Diags.str();
      return false;
    }
    W->reset();
    NativeRegistry Natives;
    W->registerNatives(Natives);
    RunConfig Config;
    Config.Plan = nullptr; // Sequential.
    Config.Simulate = false;
    RunOutcome O = runScheme(*C, T->F, W->args(Scale), Natives, Config);
    if (O.Status != RunStatus::Ok) {
      if (Err)
        *Err = "reference run failed: " + O.Diagnostic;
      return false;
    }
    Out = W->checksum();
    Refs.emplace(Key, Out);
    return true;
  }

private:
  std::map<std::pair<std::string, int>, uint64_t> Refs;
};

//===----------------------------------------------------------------------===//
// --faults sweep
//===----------------------------------------------------------------------===//

struct SweepTotals {
  uint64_t Requests = 0;
  uint64_t Ok = 0;
  uint64_t Degraded = 0;
  uint64_t Deadline = 0;
  uint64_t Shed = 0;
  uint64_t CompileErrors = 0;
  uint64_t BadRequests = 0;
  uint64_t Disconnects = 0; ///< Transport errors seen by clients.
  uint64_t Divergences = 0;
  uint64_t Internal = 0;
  std::string FirstFailure;

  void mergeFailure(const std::string &Why) {
    if (FirstFailure.empty())
      FirstFailure = Why;
  }
};

/// One client worker for one sweep iteration: a deterministic mix of
/// valid jobs, hostile bytes and control frames against the server.
void sweepClient(uint16_t Port, uint64_t Seed, unsigned Iter, unsigned Tid,
                 ReferenceBank &Refs, std::mutex &RefsM, SweepTotals &Tot,
                 std::mutex &TotM) {
  std::mt19937_64 Rng(faultMix(Seed ^ (uint64_t(Iter) << 20) ^ Tid));
  // Zipf-flavored mix: a couple of hot workloads, a long cold tail, all at
  // scales small enough to keep 200-iteration sweeps snappy.
  const struct {
    const char *Name;
    int Scale;
    unsigned Weight;
  } Mix[] = {
      {"md5sum", 48, 8}, {"kmeans", 96, 4},  {"eclat", 32, 2},
      {"url", 64, 2},    {"em3d", 48, 1},    {"geti", 48, 1},
      {"hmmer", 32, 1},  {"potrace", 32, 1},
  };
  unsigned TotalWeight = 0;
  for (const auto &M : Mix)
    TotalWeight += M.Weight;

  SyncClient Client;
  for (unsigned R = 0; R < 6; ++R) {
    if (!Client.connected() && !Client.connect(Port)) {
      std::lock_guard<std::mutex> G(TotM);
      ++Tot.Disconnects;
      return;
    }
    unsigned Dice = static_cast<unsigned>(Rng() % 100);
    if (Dice < 64) {
      // Valid job.
      unsigned Pick = static_cast<unsigned>(Rng() % TotalWeight);
      unsigned Idx = 0;
      for (; Idx + 1 < std::size(Mix) && Pick >= Mix[Idx].Weight; ++Idx)
        Pick -= Mix[Idx].Weight;
      RunRequest Req;
      Req.WorkloadName = Mix[Idx].Name;
      Req.Scale = Mix[Idx].Scale;
      Req.Threads = 4;
      Req.DeadlineMs = 5000;
      RespStatus S;
      std::string Body, Err;
      if (!Client.request(MsgType::Run, formatRunRequest(Req), S, Body,
                          &Err, /*TimeoutMs=*/60000)) {
        // Transport failure: legitimate under disconnect/slow presets as
        // long as the server itself stays up (verified by reconnecting).
        Client.close();
        std::lock_guard<std::mutex> G(TotM);
        ++Tot.Disconnects;
        continue;
      }
      std::lock_guard<std::mutex> G(TotM);
      ++Tot.Requests;
      switch (S) {
      case RespStatus::Ok:
      case RespStatus::Degraded: {
        S == RespStatus::Ok ? ++Tot.Ok : ++Tot.Degraded;
        uint64_t Want = 0;
        std::string RefErr;
        {
          std::lock_guard<std::mutex> RG(RefsM);
          if (!Refs.lookup(Req.WorkloadName, Req.Scale, Want, &RefErr)) {
            ++Tot.Divergences;
            Tot.mergeFailure("reference unavailable: " + RefErr);
            break;
          }
        }
        std::string Got;
        for (auto &[K, V] : parseKvBody(Body))
          if (K == "checksum")
            Got = V;
        char Buf[19];
        std::snprintf(Buf, sizeof(Buf), "%016llx",
                      static_cast<unsigned long long>(Want));
        if (Got != Buf) {
          ++Tot.Divergences;
          Tot.mergeFailure("checksum divergence on " + Req.WorkloadName +
                           ": got " + Got + " want " + Buf);
        }
        break;
      }
      case RespStatus::DeadlineExceeded:
        ++Tot.Deadline;
        break;
      case RespStatus::RejectedOverload:
        ++Tot.Shed;
        break;
      case RespStatus::CompileError:
        ++Tot.CompileErrors;
        break;
      case RespStatus::BadRequest:
        ++Tot.BadRequests;
        Tot.mergeFailure("valid job answered BAD_REQUEST");
        ++Tot.Divergences;
        break;
      case RespStatus::InternalError:
        ++Tot.Internal;
        Tot.mergeFailure("INTERNAL_ERROR from server");
        break;
      }
    } else if (Dice < 76) {
      // Malformed frame: the server must reply BAD_REQUEST (or drop the
      // connection), never die.
      static const char *Garbage[] = {
          "XXXX RUN 5\nhello",       "CSD1 run 5\nhello",
          "CSD1 RUN notanumber\nxx", "CSD1 RUN 99999999999\n",
          "CSD1  \n",                "\n\n\n",
      };
      Client.sendRaw(Garbage[Rng() % std::size(Garbage)]);
      RespStatus S;
      std::string Body;
      if (Client.recvResponse(S, Body, nullptr, 5000) &&
          S != RespStatus::BadRequest) {
        std::lock_guard<std::mutex> G(TotM);
        Tot.mergeFailure("garbage frame not answered with BAD_REQUEST");
        ++Tot.Divergences;
      }
      Client.close(); // Stream state is undefined now either way.
    } else if (Dice < 88) {
      // Truncated request: promise bytes, hang up instead.
      Client.sendRaw("CSD1 RUN 500\nworkload:md5sum\n");
      Client.close();
    } else {
      // Control traffic.
      RespStatus S;
      std::string Body, Err;
      MsgType T = (Rng() & 1) ? MsgType::Ping : MsgType::Stats;
      if (Client.request(T, "", S, Body, &Err, 10000)) {
        if (S != RespStatus::Ok) {
          std::lock_guard<std::mutex> G(TotM);
          Tot.mergeFailure("control frame not answered OK");
          ++Tot.Divergences;
        }
      } else {
        Client.close();
        std::lock_guard<std::mutex> G(TotM);
        ++Tot.Disconnects;
      }
    }
  }
}

int runFaultSweep(uint64_t Seed, unsigned Iters) {
  ReferenceBank Refs;
  std::mutex RefsM;
  SweepTotals Tot;
  std::mutex TotM;
  // Warm the references up front so sweep latency is all serving-path.
  {
    std::string Err;
    uint64_t Dummy;
    for (const char *Wl : {"md5sum", "kmeans", "eclat", "url", "em3d",
                           "geti", "hmmer", "potrace"}) {
      int Scale = std::map<std::string, int>{
          {"md5sum", 48}, {"kmeans", 96}, {"eclat", 32}, {"url", 64},
          {"em3d", 48},   {"geti", 48},   {"hmmer", 32}, {"potrace", 32},
      }[Wl];
      if (!Refs.lookup(Wl, Scale, Dummy, &Err)) {
        std::fprintf(stderr, "commsetd --faults: %s\n", Err.c_str());
        return 1;
      }
    }
  }

  for (unsigned I = 0; I < Iters; ++I) {
    FaultPolicy Policy = FaultPolicy::servePreset(I, Seed);
    FaultInjector Faults(Policy);
    ServerConfig Config;
    Config.CacheCapacity = 4; // Small on purpose: exercise eviction.
    Config.Admission.MaxQueueDepth = 16;
    Config.DefaultDeadlineMs = 5000;
    Config.MaxDeadlineMs = 10000;
    Config.RecvTimeoutMs = 1000;
    Config.BreakerFailThreshold = 2; // Trip readily under fault storms.
    Config.Faults = &Faults;
    Server S(Config);
    std::string Err;
    if (!S.start(&Err)) {
      std::fprintf(stderr, "iter %u: server start failed: %s\n", I,
                   Err.c_str());
      return 1;
    }
    std::vector<std::thread> Clients;
    for (unsigned T = 0; T < 4; ++T)
      Clients.emplace_back(sweepClient, S.port(), Seed, I, T,
                           std::ref(Refs), std::ref(RefsM), std::ref(Tot),
                           std::ref(TotM));
    for (auto &C : Clients)
      C.join();
    S.stop();
    if ((I + 1) % 25 == 0 || I + 1 == Iters)
      std::fprintf(stderr,
                   "[%u/%u] policy=%s jobs=%llu ok=%llu degraded=%llu "
                   "deadline=%llu shed=%llu compile_err=%llu "
                   "disconnects=%llu divergences=%llu\n",
                   I + 1, Iters, Policy.Name.c_str(),
                   (unsigned long long)Tot.Requests,
                   (unsigned long long)Tot.Ok,
                   (unsigned long long)Tot.Degraded,
                   (unsigned long long)Tot.Deadline,
                   (unsigned long long)Tot.Shed,
                   (unsigned long long)Tot.CompileErrors,
                   (unsigned long long)Tot.Disconnects,
                   (unsigned long long)Tot.Divergences);
  }

  if (Tot.Divergences || Tot.Internal || !Tot.FirstFailure.empty()) {
    std::fprintf(stderr, "commsetd --faults: FAILED: %s\n",
                 Tot.FirstFailure.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "commsetd --faults: PASS (%llu completed jobs, zero "
               "divergences, zero internal errors)\n",
               (unsigned long long)(Tot.Ok + Tot.Degraded));
  return 0;
}

//===----------------------------------------------------------------------===//
// --fuzz
//===----------------------------------------------------------------------===//

int runFuzz(uint64_t Seed, unsigned Iters) {
  std::mt19937_64 Rng(faultMix(Seed ? Seed : 1));
  auto randomBytes = [&](size_t Len) {
    std::string S(Len, '\0');
    for (char &C : S)
      C = static_cast<char>(Rng() & 0xff);
    return S;
  };
  const char *Kinds[] = {"RUN", "STATS", "PING", "NOPE", "R_UN"};
  const char *Keys[] = {"workload", "variant", "entry",    "scheme",
                        "sync",     "sched",   "threads",  "scale",
                        "deadline_ms", "source", "bogus",  ""};
  const char *Vals[] = {"md5sum", "best", "doall", "mutex", "priv",
                        "static", "4",    "0",     "999999999",
                        "-3",     "x y z", ""};

  uint64_t Frames = 0, Errors = 0, Parsed = 0;
  for (unsigned I = 0; I < Iters; ++I) {
    std::string Wire;
    switch (Rng() % 4) {
    case 0: // Pure noise.
      Wire = randomBytes(Rng() % 200);
      break;
    case 1: { // Valid frame, one byte mutated.
      std::string Body;
      unsigned Lines = Rng() % 6;
      for (unsigned L = 0; L < Lines; ++L)
        Body += std::string(Keys[Rng() % std::size(Keys)]) + ":" +
                Vals[Rng() % std::size(Vals)] + "\n";
      Wire = formatFrame(Kinds[Rng() % std::size(Kinds)], Body);
      if (!Wire.empty())
        Wire[Rng() % Wire.size()] = static_cast<char>(Rng() & 0xff);
      break;
    }
    case 2: { // Structurally valid RUN with a random kv body.
      std::string Body;
      unsigned Lines = 1 + Rng() % 8;
      for (unsigned L = 0; L < Lines; ++L)
        Body += std::string(Keys[Rng() % std::size(Keys)]) + ":" +
                Vals[Rng() % std::size(Vals)] + "\n";
      Wire = formatFrame("RUN", Body);
      break;
    }
    case 3: // Oversize / lying length claims.
      Wire = "CSD1 RUN " + std::to_string(1 + (Rng() % 4) * MaxBodyBytes) +
             "\n" + randomBytes(Rng() % 64);
      break;
    }

    FrameReader Reader;
    size_t Off = 0;
    bool Poisoned = false;
    while (true) {
      serve::Frame F;
      std::string Err;
      FrameReader::Status St = Reader.next(F, &Err);
      if (St == FrameReader::Status::Error) {
        ++Errors;
        if (Poisoned) {
          // Fine: poison is sticky. One extra probe then stop.
          break;
        }
        Poisoned = true;
        continue; // Re-poll once to assert stickiness.
      }
      if (Poisoned) {
        std::fprintf(stderr, "fuzz: reader un-poisoned itself (iter %u)\n",
                     I);
        return 1;
      }
      if (St == FrameReader::Status::Ready) {
        ++Frames;
        if (F.Body.size() > MaxBodyBytes) {
          std::fprintf(stderr, "fuzz: oversize body accepted (iter %u)\n",
                       I);
          return 1;
        }
        RunRequest Req;
        std::string PErr;
        if (parseRunRequest(F.Body, Req, &PErr))
          ++Parsed;
        continue;
      }
      // NeedMore: feed the next chunk, or stop when input is exhausted.
      if (Off >= Wire.size())
        break;
      size_t Chunk = 1 + Rng() % 37;
      if (Chunk > Wire.size() - Off)
        Chunk = Wire.size() - Off;
      Reader.feed(Wire.data() + Off, Chunk);
      Off += Chunk;
    }
    if (Reader.buffered() > MaxBodyBytes + MaxHeaderBytes + 1) {
      std::fprintf(stderr, "fuzz: unbounded buffering (iter %u)\n", I);
      return 1;
    }
  }
  std::fprintf(stderr,
               "commsetd --fuzz: PASS (%u iters, %llu frames, %llu "
               "errors, %llu parsed)\n",
               Iters, (unsigned long long)Frames,
               (unsigned long long)Errors, (unsigned long long)Parsed);
  return 0;
}

//===----------------------------------------------------------------------===//
// serve mode
//===----------------------------------------------------------------------===//

int runServe(const ServerConfig &Config, FaultInjector *Faults) {
  ServerConfig C = Config;
  C.Faults = Faults;
  Server S(C);
  std::string Err;
  if (!S.start(&Err)) {
    std::fprintf(stderr, "commsetd: %s\n", Err.c_str());
    return 1;
  }
  std::printf("commsetd listening on 127.0.0.1:%u\n", S.port());
  std::fflush(stdout);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!GotSignal)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::fprintf(stderr, "commsetd: shutting down\n%s",
               S.statsText().c_str());
  S.stop();
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool ModeFaults = false, ModeFuzz = false;
  uint64_t Seed = 1;
  unsigned Iters = 0;
  ServerConfig Config;
  int FaultPreset = -1;
  uint64_t FaultSeed = 1;

  auto numOf = [](const std::string &Arg, const char *Flag) {
    return std::strtoull(Arg.c_str() + std::strlen(Flag), nullptr, 10);
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto has = [&](const char *Flag) { return Arg.rfind(Flag, 0) == 0; };
    if (Arg == "--faults")
      ModeFaults = true;
    else if (Arg == "--fuzz")
      ModeFuzz = true;
    else if (has("--iters="))
      Iters = static_cast<unsigned>(numOf(Arg, "--iters="));
    else if (has("--seed="))
      Seed = numOf(Arg, "--seed=");
    else if (has("--port="))
      Config.Port = static_cast<uint16_t>(numOf(Arg, "--port="));
    else if (has("--max-conns="))
      Config.MaxConnections =
          static_cast<unsigned>(numOf(Arg, "--max-conns="));
    else if (has("--cache-cap="))
      Config.CacheCapacity = numOf(Arg, "--cache-cap=");
    else if (has("--rate="))
      Config.Admission.RatePerSec = std::atof(Arg.c_str() + 7);
    else if (has("--burst="))
      Config.Admission.Burst = static_cast<double>(numOf(Arg, "--burst="));
    else if (has("--max-queue="))
      Config.Admission.MaxQueueDepth = numOf(Arg, "--max-queue=");
    else if (has("--default-deadline-ms="))
      Config.DefaultDeadlineMs = numOf(Arg, "--default-deadline-ms=");
    else if (has("--max-deadline-ms="))
      Config.MaxDeadlineMs = numOf(Arg, "--max-deadline-ms=");
    else if (has("--recv-timeout-ms="))
      Config.RecvTimeoutMs = numOf(Arg, "--recv-timeout-ms=");
    else if (has("--faults-preset="))
      FaultPreset = static_cast<int>(numOf(Arg, "--faults-preset="));
    else if (has("--faults-seed="))
      FaultSeed = numOf(Arg, "--faults-seed=");
    else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "commsetd: unknown option %s\n", Arg.c_str());
      usage();
      return 64;
    }
  }

  if (ModeFaults && ModeFuzz) {
    std::fprintf(stderr, "commsetd: --faults and --fuzz are exclusive\n");
    return 64;
  }
  if (ModeFaults)
    return runFaultSweep(Seed, Iters ? Iters : 40);
  if (ModeFuzz)
    return runFuzz(Seed, Iters ? Iters : 5000);

  std::unique_ptr<FaultInjector> Faults;
  if (FaultPreset >= 0)
    Faults = std::make_unique<FaultInjector>(
        FaultPolicy::servePreset(static_cast<unsigned>(FaultPreset),
                                 FaultSeed));
  return runServe(Config, Faults.get());
}
