//===- runner.cpp - commset-run: execute one workload, optionally traced --===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Command-line driver around Runner: compiles one of the paper's evaluation
// workloads, builds a parallelization scheme, executes it on real threads
// (or the multicore simulator) and reports the outcome. The CommTrace
// surface lives here: --trace-out captures a Chrome trace_event JSON of the
// run, --profile prints the per-run profile report to stderr, and
// --validate-trace re-parses the exported trace and fails loudly when it is
// not well-formed (the trace-smoke ctest tier runs exactly that).
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Runner.h"
#include "commset/Exec/JitBackend.h"
#include "commset/Trace/Export.h"
#include "commset/Workloads/Workload.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace commset;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <workload> [options]\n"
      "       %s --list\n"
      "\n"
      "options:\n"
      "  --scheme=S        doall | dswp | psdswp | seq | best (default best)\n"
      "  --sync=M          mutex | spin | tm | none | priv (default mutex)\n"
      "  --sched=P         static | dynamic | guided iteration scheduling\n"
      "                    (default guided)\n"
      "  --threads=N       worker threads (default 4)\n"
      "  --scale=N         iteration count (default: workload default)\n"
      "  --variant=V       source variant: '', noself, plain\n"
      "  --deadline-ms=N   wall-clock budget; the run is cancelled at the\n"
      "                    first region checkpoint past it (exit code 75)\n"
      "  --simulate        run under the multicore simulator (default: real\n"
      "                    threads)\n"
      "  --backend=B       interp | jit — execution backend for function\n"
      "                    bodies (default interp). jit compiles the module\n"
      "                    to x86-64 and needs real threads (no --simulate)\n"
      "  --trace-out=FILE  write a Chrome trace_event JSON of the run\n"
      "  --profile         print the CommTrace profile report to stderr\n"
      "  --validate-trace  validate the exported trace; fail if malformed\n"
      "\n"
      "exit codes: 0 ok, 10 degraded-to-sequential, 70 internal error,\n"
      "            75 deadline-exceeded, 64 usage, 65 invalid trace\n",
      Argv0, Argv0);
  return 64;
}

bool parseSync(const std::string &S, SyncMode &Out) {
  if (S == "mutex")
    Out = SyncMode::Mutex;
  else if (S == "spin")
    Out = SyncMode::Spin;
  else if (S == "tm")
    Out = SyncMode::Tm;
  else if (S == "none" || S == "lib")
    Out = SyncMode::None;
  else if (S == "priv")
    Out = SyncMode::Priv;
  else
    return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string WorkloadName;
  std::string SchemeName = "best";
  std::string SyncName = "mutex";
  std::string SchedName = "guided";
  std::string Variant;
  std::string BackendName = "interp";
  std::string TraceOut;
  unsigned Threads = 4;
  int Scale = 0;
  uint64_t DeadlineMs = 0;
  bool Simulate = false;
  bool Profile = false;
  bool ValidateTrace = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto valueOf = [&Arg](const char *Prefix) {
      return Arg.substr(std::strlen(Prefix));
    };
    if (Arg == "--list") {
      for (const std::string &Name : workloadNames())
        std::printf("%s\n", Name.c_str());
      return 0;
    } else if (Arg.rfind("--scheme=", 0) == 0) {
      SchemeName = valueOf("--scheme=");
    } else if (Arg.rfind("--sync=", 0) == 0) {
      SyncName = valueOf("--sync=");
    } else if (Arg.rfind("--sched=", 0) == 0) {
      SchedName = valueOf("--sched=");
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Threads = static_cast<unsigned>(std::atoi(valueOf("--threads=").c_str()));
    } else if (Arg.rfind("--scale=", 0) == 0) {
      Scale = std::atoi(valueOf("--scale=").c_str());
    } else if (Arg.rfind("--deadline-ms=", 0) == 0) {
      DeadlineMs = static_cast<uint64_t>(
          std::atoll(valueOf("--deadline-ms=").c_str()));
    } else if (Arg.rfind("--variant=", 0) == 0) {
      Variant = valueOf("--variant=");
    } else if (Arg.rfind("--backend=", 0) == 0) {
      BackendName = valueOf("--backend=");
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      TraceOut = valueOf("--trace-out=");
    } else if (Arg == "--simulate") {
      Simulate = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg == "--validate-trace") {
      ValidateTrace = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return usage(argv[0]);
    } else if (WorkloadName.empty()) {
      WorkloadName = Arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", Arg.c_str());
      return usage(argv[0]);
    }
  }
  if (WorkloadName.empty())
    return usage(argv[0]);
  if (Threads == 0 || Threads > 64) {
    std::fprintf(stderr, "--threads must be in 1..64\n");
    return 64;
  }
  SyncMode Sync;
  if (!parseSync(SyncName, Sync)) {
    std::fprintf(stderr, "bad --sync value: %s\n", SyncName.c_str());
    return 64;
  }
  SchedPolicy Sched;
  if (!schedPolicyFromString(SchedName.c_str(), Sched)) {
    std::fprintf(stderr, "bad --sched value: %s\n", SchedName.c_str());
    return 64;
  }
  ExecBackendKind BackendKind;
  if (!execBackendFromString(BackendName.c_str(), BackendKind)) {
    std::fprintf(stderr, "bad --backend value: %s\n", BackendName.c_str());
    return 64;
  }
  if (BackendKind == ExecBackendKind::Jit && Simulate) {
    std::fprintf(stderr, "--backend=jit needs real threads; drop --simulate\n");
    return 64;
  }
  if (BackendKind == ExecBackendKind::Jit && !JitBackend::supported()) {
    std::fprintf(stderr, "--backend=jit is not supported on this host "
                         "(non-x86-64 or COMMSET_JIT=OFF build)\n");
    return 64;
  }

  std::unique_ptr<Workload> W = makeWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 WorkloadName.c_str());
    return 64;
  }
  if (Scale == 0)
    Scale = W->defaultScale();

  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(W->source(Variant), Diags);
  if (!C) {
    std::fprintf(stderr, "compile failed:\n%s", Diags.str().c_str());
    return 70;
  }
  auto T = C->analyzeLoop(W->entry(), Diags);
  if (!T) {
    std::fprintf(stderr, "loop analysis failed:\n%s", Diags.str().c_str());
    return 70;
  }

  PlanOptions Opts;
  Opts.NumThreads = Threads;
  Opts.Sync = Sync;
  Opts.Sched = Sched;
  for (auto &[K, Cost] : W->costHints())
    Opts.NativeCostHints[K] = Cost;
  std::vector<SchemeReport> Schemes = buildAllSchemes(*C, *T, Opts);

  const SchemeReport *Chosen = nullptr;
  if (SchemeName == "best") {
    Chosen = bestScheme(Schemes);
  } else {
    Strategy Want;
    if (SchemeName == "doall")
      Want = Strategy::Doall;
    else if (SchemeName == "dswp")
      Want = Strategy::Dswp;
    else if (SchemeName == "psdswp")
      Want = Strategy::PsDswp;
    else if (SchemeName == "seq" || SchemeName == "sequential")
      Want = Strategy::Sequential;
    else {
      std::fprintf(stderr, "bad --scheme value: %s\n", SchemeName.c_str());
      return 64;
    }
    for (const SchemeReport &R : Schemes)
      if (R.Kind == Want)
        Chosen = &R;
  }
  if (!Chosen || !Chosen->Applicable || !Chosen->Plan) {
    std::fprintf(stderr, "scheme '%s' not applicable for %s: %s\n",
                 SchemeName.c_str(), WorkloadName.c_str(),
                 Chosen ? Chosen->WhyNot.c_str() : "no scheme");
    return 64;
  }

  NativeRegistry Natives;
  W->reset();
  W->registerNatives(Natives);

  std::unique_ptr<JitBackend> Jit;
  if (BackendKind == ExecBackendKind::Jit) {
    Jit = JitBackend::create(C->module());
    if (!Jit) {
      std::fprintf(stderr, "jit backend creation failed\n");
      return 70;
    }
  }

  RunConfig Config;
  Config.Backend = Jit.get();
  Config.Plan = Chosen->Kind == Strategy::Sequential ? nullptr
                                                     : &*Chosen->Plan;
  Config.Simulate = Simulate;
  Config.DeadlineMs = DeadlineMs;
  Config.ResetState = [&W] { W->reset(); };
  Config.TraceOutPath = TraceOut;
  Config.TraceProfileStderr = Profile;
  Config.Trace = ValidateTrace || !TraceOut.empty() || Profile;

  RunOutcome Out = runScheme(*C, T->F, W->args(Scale), Natives, Config);

  std::printf("workload:   %s (scale %d, variant '%s')\n",
              WorkloadName.c_str(), Scale, Variant.c_str());
  std::printf("scheme:     %s\n", Chosen->Plan->describe().c_str());
  if (Jit)
    std::printf("backend:    jit (%u native fns, %u fallback, %zu code "
                "bytes)\n",
                Jit->compiledCount(), Jit->fallbackCount(), Jit->codeBytes());
  std::printf("status:     %s\n", runStatusName(Out.Status));
  if (!Out.Diagnostic.empty())
    std::printf("diagnostic: %s\n", Out.Diagnostic.c_str());
  if (Simulate)
    std::printf("virtual:    %.3f ms\n", Out.VirtualNs / 1e6);
  std::printf("wall:       %.3f ms\n", Out.WallNs / 1e6);
  std::printf("iterations: %llu\n",
              static_cast<unsigned long long>(Out.Iterations));
  std::printf("checksum:   %016llx\n",
              static_cast<unsigned long long>(W->checksum()));
  if (Out.TmAborts || Out.LockContentions)
    std::printf("conflicts:  %llu tm aborts, %llu lock contentions\n",
                static_cast<unsigned long long>(Out.TmAborts),
                static_cast<unsigned long long>(Out.LockContentions));
  if (Config.Trace)
    std::printf("trace:      %llu events (%llu dropped)%s%s\n",
                static_cast<unsigned long long>(Out.TraceEvents),
                static_cast<unsigned long long>(Out.TraceDropped),
                TraceOut.empty() ? "" : " -> ",
                TraceOut.c_str());
  if (!Out.TraceError.empty()) {
    std::fprintf(stderr, "trace export error: %s\n", Out.TraceError.c_str());
    return 65;
  }

  if (ValidateTrace) {
    if (TraceOut.empty()) {
      std::fprintf(stderr, "--validate-trace requires --trace-out=FILE\n");
      return 64;
    }
    std::ifstream In(TraceOut);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (!In) {
      std::fprintf(stderr, "cannot read back trace file %s\n",
                   TraceOut.c_str());
      return 65;
    }
    std::string Err;
    if (!trace::validateChromeTrace(Buf.str(), &Err)) {
      std::fprintf(stderr, "trace validation FAILED: %s\n", Err.c_str());
      return 65;
    }
    std::printf("trace validated: well-formed, monotone per-thread ts, "
                "balanced B/E\n");
  }

  return exitCodeFor(Out.Status);
}
